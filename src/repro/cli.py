"""Command-line interface.

Everything the examples do, scriptable::

    repro canonical --out courses.json
    repro generate --seed 7 --out courses.json
    repro agreement courses.json --label CS1
    repro flavors courses.json --label CS1 -k 3 --seed 1
    repro types courses.json -k 4 --seed 6
    repro matrix courses.json --out matrix.csv
    repro recommend courses.json --course-id washu-131-singh
    repro hit-tree courses.json --course-id washu-131-singh --out tree.svg

Every subcommand reads/writes the JSON corpus format of :mod:`repro.io`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.analysis import agreement, analyze_flavors, build_course_matrix, type_courses
from repro.anchors import recommend_for_course
from repro.canonical import load_canonical_dataset
from repro.corpus.generator import generate_corpus
from repro.corpus.roster import EXCLUDED_ROSTER, ROSTER
from repro.curriculum import load_cs2013
from repro.runtime import NMF_KERNELS
from repro.io import load_courses, save_courses, save_matrix_csv
from repro.materials import build_hit_tree
from repro.materials.course import CourseLabel
from repro.materials.material import MaterialType
from repro.util.tables import format_table
from repro.viz import ascii_heatmap, ascii_histogram, render_radial_svg


def _load(path: str):
    courses = load_courses(path)
    if not courses:
        raise SystemExit(f"{path}: no courses")
    return courses


def _repository(courses):
    from repro.materials import MaterialRepository

    repo = MaterialRepository()
    for c in courses:
        repo.add_course(c)
    return repo


def _nonneg_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _nonneg_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _filter_label(courses, label: str | None):
    if label is None:
        return courses
    try:
        lab = CourseLabel(label)
    except ValueError:
        raise SystemExit(
            f"unknown label {label!r}; choose from "
            f"{[l.value for l in CourseLabel]}"
        ) from None
    out = [c for c in courses if lab in c.labels]
    if not out:
        raise SystemExit(f"no courses carry label {label}")
    return out


def cmd_canonical(args) -> int:
    _, courses, _ = load_canonical_dataset()
    save_courses(list(courses), args.out)
    print(f"wrote {len(courses)} canonical courses to {args.out}")
    return 0


def cmd_generate(args) -> int:
    tree = load_cs2013()
    if args.courses is not None or args.materials is not None:
        # Scaled synthetic corpus: stream courses straight to disk so a
        # 100k-material corpus never lives in memory.  A .jsonl suffix
        # selects the line-oriented layout (streamable back with
        # `repro ingest` / iter_course_records); otherwise the array
        # layout is collected and saved whole.
        from repro.corpus.stream import generate_stream, save_courses_jsonl

        stream = generate_stream(
            tree,
            seed=args.seed,
            n_courses=args.courses,
            n_materials=args.materials,
        )
        if str(args.out).endswith(".jsonl"):
            n = save_courses_jsonl(stream, args.out)
        else:
            courses = list(stream)
            save_courses(courses, args.out)
            n = len(courses)
        print(f"wrote {n} synthetic courses (seed {args.seed}) to {args.out}")
        return 0
    roster = list(ROSTER) + (list(EXCLUDED_ROSTER) if args.include_excluded else [])
    courses = generate_corpus(tree, seed=args.seed, roster=roster)
    save_courses(courses, args.out)
    print(f"wrote {len(courses)} courses (seed {args.seed}) to {args.out}")
    return 0


def cmd_agreement(args) -> int:
    tree = load_cs2013()
    courses = _filter_label(_load(args.courses), args.label)
    res = agreement(courses, tree=tree, weighted=args.weighted)
    print(f"{len(courses)} courses, {res.n_tags} distinct tags")
    for k in sorted(res.at_least):
        if k <= len(courses):
            print(f"  tags in >= {k} courses: {res.at_least[k]}")
    print(ascii_histogram(res.distribution, label="  "))
    return 0


def cmd_types(args) -> int:
    tree = load_cs2013()
    courses = _load(args.courses)
    matrix = build_course_matrix(courses, tree=tree)
    typing = type_courses(matrix, args.k, seed=args.seed)
    print(ascii_heatmap(
        typing.w_normalized,
        row_labels=list(matrix.course_ids),
        col_labels=[f"d{i + 1}" for i in range(args.k)],
        normalize="global",
    ))
    for label, dim in typing.label_to_type(courses).items():
        print(f"{label.value:10s} -> dimension {dim + 1}")
    print(f"reconstruction error: {typing.reconstruction_err:.3f}")
    return 0


def cmd_flavors(args) -> int:
    tree = load_cs2013()
    courses = _filter_label(_load(args.courses), args.label)
    matrix = build_course_matrix(courses, tree=tree)
    fa = analyze_flavors(matrix, tree, args.k, seed=args.seed)
    for p in fa.profiles:
        print(p.describe())
    for cid in matrix.course_ids:
        w = fa.course_memberships(cid)
        print(f"  {cid:24s} {np.round(w, 2)}")
    return 0


def cmd_matrix(args) -> int:
    tree = load_cs2013()
    courses = _load(args.courses)
    matrix = build_course_matrix(courses, tree=tree)
    save_matrix_csv(matrix, args.out)
    print(f"wrote {matrix.n_courses} x {matrix.n_tags} matrix to {args.out}")
    return 0


def cmd_recommend(args) -> int:
    courses = _load(args.courses)
    try:
        course = next(c for c in courses if c.id == args.course_id)
    except StopIteration:
        raise SystemExit(f"no course {args.course_id!r} in {args.courses}") from None
    flavors = args.flavor or []
    recs = recommend_for_course(course, flavors=flavors)
    rows = [
        (r.module.id, f"{r.score:.2f}", f"{r.anchor_coverage:.0%}",
         "yes" if r.deployable else f"missing {len(r.missing_anchors)}")
        for r in recs.top(args.top)
    ]
    print(format_table(rows, header=["module", "score", "anchors", "deployable"]))
    return 0


def cmd_pdc_gap(args) -> int:
    from repro.analysis.program import analyze_program, pdc_gap

    tree = load_cs2013()
    courses = _load(args.courses)
    prog = analyze_program(courses, tree)
    gap = pdc_gap(courses, tree, core_only=not args.all_tiers)
    print(f"program of {len(courses)} courses")
    print(f"  core-1 coverage: {prog.core1_coverage:.1%}")
    print(f"  core-2 coverage: {prog.core2_coverage:.1%}")
    print(f"  meets CS2013 core rules: {prog.meets_core_requirements()}")
    print(f"  PD-area gap: {len(gap)} entries")
    for t in gap[: args.top]:
        print(f"    - {tree[t].label}")
    return 0


def cmd_deps(args) -> int:
    from repro.analysis.dependencies import topic_dependencies

    tree = load_cs2013()
    courses = _load(args.courses)
    try:
        course = next(c for c in courses if c.id == args.course_id)
    except StopIteration:
        raise SystemExit(f"no course {args.course_id!r} in {args.courses}") from None
    deps = topic_dependencies(course)
    chain = deps.longest_chain()
    print(f"{course.id}: {deps.graph.n_tasks} topics, "
          f"{deps.graph.n_edges} dependencies")
    print(f"longest prerequisite chain ({len(chain)} topics):")
    for t in chain:
        label = tree[t].label if t in tree else t
        print(f"  {deps.intro_position[t]:3d}  {label}")
    found = deps.foundational_tags(min_dependents=args.min_dependents)
    print(f"foundational topics (>= {args.min_dependents} dependents): {len(found)}")
    return 0


def cmd_lint(args) -> int:
    from repro.curriculum import load_pdc12
    from repro.materials.lint import lint_corpus
    from repro.quality.report import fails_threshold, render_json, render_text

    courses = _load(args.courses)
    issues = lint_corpus(courses, [load_cs2013(), load_pdc12()])
    records = [i.to_record() for i in issues]
    if args.format == "json":
        print(render_json(
            records, tool="repro.materials.lint", n_files=len(courses)
        ))
    else:
        print(render_text(records, n_files=len(courses), noun="course"))
    return 1 if fails_threshold(records, args.fail_on) else 0


def cmd_lint_code(args) -> int:
    from repro.quality import run_lint_code

    try:
        report, status = run_lint_code(
            args.paths,
            fmt=args.format,
            fail_on=args.fail_on,
            select=args.select,
            jobs=args.jobs,
            baseline=args.baseline,
            write_baseline_to=args.write_baseline,
            lock_graph_out=args.lock_graph_out,
        )
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    print(report)
    return status


def cmd_map(args) -> int:
    from repro.materials.diff import course_map
    from repro.viz import ascii_scatter

    tree = load_cs2013()
    courses = _load(args.courses)
    coords, res = course_map(courses, tree=tree, seed=args.seed)
    print(ascii_scatter(coords, width=args.width, height=args.height))
    print(f"MDS stress {res.stress:.3f} after {res.n_iter} iterations")
    for cid, (x, y) in coords.items():
        print(f"  {cid:24s} {x:+.2f} {y:+.2f}")
    return 0


def cmd_schedule(args) -> int:
    from repro.io.dag_io import load_taskgraph
    from repro.taskgraph import list_schedule, list_schedule_comm
    from repro.viz import ascii_gantt

    graph = load_taskgraph(args.dag)
    if args.comm_delay > 0:
        schedule = list_schedule_comm(
            graph, args.processors, comm_delay=args.comm_delay, policy=args.policy
        )
    else:
        schedule = list_schedule(graph, args.processors, policy=args.policy)
        schedule.validate()
    print(f"{graph.n_tasks} tasks, {graph.n_edges} edges")
    print(f"work {graph.work():.2f}, span {graph.span():.2f}, "
          f"parallelism {graph.parallelism():.2f}")
    print(f"makespan on p={args.processors} ({args.policy}): "
          f"{schedule.makespan:.2f}  "
          f"speedup {schedule.speedup():.2f}  "
          f"efficiency {schedule.efficiency():.2f}")
    if args.gantt:
        print(ascii_gantt(schedule, width=args.width))
    return 0


def cmd_compare(args) -> int:
    from repro.materials.diff import compare_courses

    tree = load_cs2013()
    courses = _load(args.courses)
    by_id = {c.id: c for c in courses}
    try:
        a, b = by_id[args.a], by_id[args.b]
    except KeyError as exc:
        raise SystemExit(f"unknown course id {exc}") from None
    diff = compare_courses(a, b, tree)
    print(f"{a.id} vs {b.id}")
    print(f"  shared tags : {diff.n_shared} (Jaccard {diff.jaccard:.2f})")
    print(f"  only {a.id}: {len(diff.only_a)}")
    print(f"  only {b.id}: {len(diff.only_b)}")
    print(f"  common ground : {', '.join(diff.most_shared_areas())}")
    print(f"  diverges most : {', '.join(diff.most_divergent_areas())}")
    rows = [
        (area, *counts)
        for area, counts in sorted(diff.by_area.items())
    ]
    print(format_table(rows, header=["area", "shared", f"only {a.id}", f"only {b.id}"]))
    return 0


def cmd_materials(args) -> int:
    from repro.anchors import recommend_materials
    from repro.materials.external import load_external_materials

    courses = _load(args.courses)
    try:
        course = next(c for c in courses if c.id == args.course_id)
    except StopIteration:
        raise SystemExit(f"no course {args.course_id!r} in {args.courses}") from None
    recs = recommend_materials(course, load_external_materials(), limit=args.top)
    rows = [
        (r.material.id, f"{r.score:.2f}",
         len(r.direct_anchors) + len(r.crosswalk_anchors),
         len(r.new_pdc_tags))
        for r in recs
    ]
    print(format_table(
        rows, header=["material", "score", "anchors met", "new PDC topics"],
    ))
    return 0


def cmd_report(args) -> int:
    from repro.report import ReportConfig

    tree = load_cs2013()
    courses = _load(args.courses)
    config = ReportConfig(typing_seed=args.seed, flavors_seed=args.seed)
    if args.engine == "direct":
        from repro.report import build_report_direct

        text = build_report_direct(courses, tree, config=config, title=args.title)
    else:
        from repro.pipeline import build_report_pipeline

        run = build_report_pipeline(
            courses, tree, config=config, title=args.title,
        ).run(workers=args.workers, use_cache=not args.no_cache)
        text = run.value("report")
        if args.explain:
            print(run.explain(), file=sys.stderr)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote report ({len(text.splitlines())} lines) to {args.out}")
    else:
        print(text)
    return 0


def cmd_search(args) -> int:
    from repro.materials import SearchQuery

    tree = load_cs2013()
    repo = _repository(_load(args.courses))
    query = SearchQuery(
        tags=frozenset(args.tag or []),
        text=args.text,
        mtype=MaterialType(args.type) if args.type else None,
        author=args.author,
        course_level=args.level,
        language=args.language,
        dataset=args.dataset,
    )
    hits = repo.search(query, tree=tree, limit=args.limit)
    rows = [
        (h.material.id, f"{h.score:.3f}", h.material.mtype.value, h.material.title)
        for h in hits
    ]
    if rows:
        print(format_table(rows, header=["material", "score", "type", "title"]))
    print(f"{len(hits)} hit(s) across {repo.n_materials} materials")
    return 0


def cmd_similar(args) -> int:
    repo = _repository(_load(args.courses))
    try:
        hits = repo.find_similar(args.material_id, limit=args.limit)
    except KeyError:
        raise SystemExit(
            f"no material {args.material_id!r} in {args.courses}"
        ) from None
    rows = [
        (h.material.id, f"{h.score:.3f}", h.material.title) for h in hits
    ]
    print(format_table(rows, header=["material", "score", "title"]))
    return 0


def cmd_hit_tree(args) -> int:
    tree = load_cs2013()
    courses = _load(args.courses)
    try:
        course = next(c for c in courses if c.id == args.course_id)
    except StopIteration:
        raise SystemExit(f"no course {args.course_id!r} in {args.courses}") from None
    ht = build_hit_tree(course.materials, tree)
    with open(args.out, "w") as fh:
        fh.write(render_radial_svg(ht))
    print(f"wrote hit-tree ({len(ht.tree)} nodes) to {args.out}")
    return 0


def cmd_ingest(args) -> int:
    import json as _json

    from repro.corpus.ingest import load_courses_tolerant
    from repro.corpus.stream import ingest_stream, iter_course_records
    from repro.materials import MaterialRepository

    trees = [load_cs2013()] if args.validate_tags else []
    try:
        if str(args.courses).endswith(".jsonl"):
            # Streamed layout: records flow through a throwaway repository
            # in bounded-memory chunks; same accounting, any corpus size.
            report = ingest_stream(
                MaterialRepository(),
                iter_course_records(args.courses),
                trees=trees,
                strict=args.strict,
            )
        else:
            report = load_courses_tolerant(
                args.courses, trees=trees, strict=args.strict
            )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.summary())
    return 0 if not report.excluded or args.allow_excluded else 1


def cmd_faults(args) -> int:
    """Demonstrate fault recovery: a faulty run must match a clean one."""
    import os as _os

    import repro.runtime as runtime

    plan = runtime.parse_fault_plan(args.plan)
    rng = np.random.default_rng(args.seed)
    a = rng.random((args.rows, args.cols))
    specs = [
        {"n_components": 4, "max_iter": 40, "seed": i}
        for i in range(args.fits)
    ]
    workers = max(runtime.resolve_workers(args.workers), 2)

    def run() -> list[dict]:
        return runtime.run_nmf_fits(
            a, specs, workers=workers, use_cache=False, kernel="serial"
        )

    # Clean reference: no configured plan, and shield from REPRO_FAULTS.
    env_plan = _os.environ.pop("REPRO_FAULTS", None)
    try:
        runtime.configure(fault_plan=None)
        baseline = run()
    finally:
        if env_plan is not None:
            _os.environ["REPRO_FAULTS"] = env_plan
    runtime.reset()
    runtime.configure(fault_plan=plan)
    try:
        faulty = run()
    finally:
        runtime.configure(fault_plan=None)
    identical = all(
        all(np.array_equal(b[k], f[k]) for k in b)
        for b, f in zip(baseline, faulty)
    )
    report = runtime.failure_report()
    print(f"plan: {plan.describe()}")
    print(f"fits: {args.fits} on a {args.rows}x{args.cols} matrix, "
          f"{workers} workers")
    print(f"recovery events: {report.summary()}")
    print("bit-identical to fault-free run:", "yes" if identical else "NO")
    if args.report_out:
        with open(args.report_out, "w") as fh:
            fh.write(report.to_json() + "\n")
        print(f"wrote failure report to {args.report_out}")
    return 0 if identical else 1


def _service_state(args):
    from repro.materials.persist import (
        has_state,
        load_repository,
        save_repository,
    )
    from repro.service import ServiceConfig, ServiceState

    config = ServiceConfig(
        n_shards=args.shards,
        resident=not args.no_resident,
        coalesce=not args.no_coalesce,
        window_s=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        max_inflight_cheap=args.max_inflight_cheap,
        max_queue_cheap=args.max_queue_cheap,
        max_inflight_heavy=args.max_inflight_heavy,
        max_queue_heavy=args.max_queue_heavy,
        default_deadline_s=(
            args.deadline_ms / 1000.0 if args.deadline_ms else None
        ),
        breaker_threshold=args.breaker_threshold,
        breaker_recovery_s=args.breaker_recovery,
        chaos_ops=args.chaos_ops,
    )
    if args.state_dir and has_state(args.state_dir):
        repo, load_report = load_repository(args.state_dir)
        tree = load_cs2013()
        state = ServiceState(tree, None, config=config, repo=repo)
        return state, load_report
    if args.courses:
        courses = _load(args.courses)
        tree = load_cs2013()
    else:
        tree, courses, _ = load_canonical_dataset()
    state = ServiceState(tree, courses, config=config)
    if args.state_dir:
        save_repository(state.repo, args.state_dir)
    return state, None


def cmd_serve(args) -> int:
    from repro.service import ReproService, serve_forever

    state, load_report = _service_state(args)
    service = ReproService(state, host=args.host, port=args.port)
    host, port = service.start()
    if load_report is not None:
        rebuilt = load_report.get("rebuilt_shards", [])
        print(
            f"warm restart from {args.state_dir} "
            f"({len(rebuilt)} shard(s) rebuilt from JSONL)"
            + (f": {rebuilt}" if rebuilt else ""),
            file=sys.stderr,
        )
        excluded = 0
    else:
        excluded = len(state.ingest_report.excluded)
        if args.state_dir:
            print(f"state persisted to {args.state_dir}", file=sys.stderr)
    print(
        f"serving {state.repo.n_courses} courses / "
        f"{state.repo.n_materials} materials "
        f"({excluded} excluded) on http://{host}:{port}",
        file=sys.stderr,
    )
    print(
        f"  shards={state.repo.n_shards} "
        f"resident={'on' if state.config.resident else 'off'} "
        f"coalesce={'on' if state.config.coalesce else 'off'} "
        f"window={state.config.window_s * 1e3:.0f}ms "
        f"deadline={args.deadline_ms:.0f}ms "
        f"chaos_ops={'on' if state.config.chaos_ops else 'off'}",
        file=sys.stderr,
    )
    serve_forever(service)
    from repro.runtime import sanitize

    if sanitize.enabled():
        san = sanitize.sanitizer()
        print(f"sanitizer: {san.n_violations} violation(s)", file=sys.stderr)
        for violation in san.violations():
            print(f"  {violation.kind}: {violation.detail}", file=sys.stderr)
    print("drained and stopped", file=sys.stderr)
    return 0


def cmd_loadtest(args) -> int:
    import json as _json

    from repro.service import CHAOS_MIX, DEFAULT_MIX, run_chaos_load, run_load

    try:
        if args.chaos:
            report = run_chaos_load(
                args.host,
                args.port,
                concurrency=args.concurrency,
                burst_concurrency=args.burst_concurrency,
                requests_per_worker=args.requests or 25,
                mix=args.mix or CHAOS_MIX,
                seed=args.seed,
                nmf_restarts=args.restarts,
                deadline_ms=args.deadline_ms or 2000.0,
                kill_workers=args.kill_workers,
            )
            ok = report.ok
        else:
            report = run_load(
                args.host,
                args.port,
                concurrency=args.concurrency,
                duration_s=None if args.requests else args.duration,
                requests_per_worker=args.requests,
                mix=args.mix or DEFAULT_MIX,
                seed=args.seed,
                nmf_restarts=args.restarts,
                deadline_ms=args.deadline_ms if args.deadline_ms else None,
            )
            ok = report.total_errors == 0
    except (ConnectionError, OSError, RuntimeError, ValueError) as exc:
        raise SystemExit(f"load test failed: {exc}") from None
    if args.json_out:
        with open(args.json_out, "w") as fh:
            _json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote report to {args.json_out}", file=sys.stderr)
    print(report.summary())
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Data-Driven Discovery of "
                    "Anchor Points for PDC Content' (SC-W 2023).",
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for parallel analyses "
             "(default: $REPRO_WORKERS or serial; results are identical "
             "for any value)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist factorization results under DIR so repeated runs "
             "skip redundant solves (default: $REPRO_CACHE_DIR or "
             "memory-only)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable factorization memoization entirely",
    )
    p.add_argument(
        "--nmf-kernel", choices=NMF_KERNELS, default=None,
        help="NMF execution strategy: 'batched' vectorizes all restarts in "
             "one kernel, 'serial' fits one at a time, 'online' streams "
             "row blocks out-of-core, 'auto' picks "
             "(default: $REPRO_NMF_KERNEL or auto; results are identical)",
    )
    p.add_argument(
        "--task-timeout", type=_positive_float, default=None, metavar="S",
        help="per-task wall-clock budget in seconds; a task that exceeds it "
             "is killed and retried (default: $REPRO_TASK_TIMEOUT or "
             "unbounded)",
    )
    p.add_argument(
        "--retries", type=_nonneg_int, default=None, metavar="N",
        help="per-task recovery budget for transient/infrastructure "
             "failures; 0 disables retries (default: $REPRO_TASK_RETRIES "
             "or 2)",
    )
    p.add_argument(
        "--runtime-summary", action="store_true",
        help="print runtime metrics (timers, counters, cache stats) after "
             "the command",
    )
    sub = p.add_subparsers(dest="command", required=True)

    c = sub.add_parser("canonical", help="export the canonical 20-course dataset")
    c.add_argument("--out", required=True)
    c.set_defaults(func=cmd_canonical)

    g = sub.add_parser("generate", help="generate a corpus from the roster")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--out", required=True)
    g.add_argument("--include-excluded", action="store_true")
    scale = g.add_mutually_exclusive_group()
    scale.add_argument(
        "--courses", type=_positive_int, default=None, metavar="M",
        help="generate M synthetic courses instead of the paper roster "
             "(streamed; use a .jsonl --out for bounded memory)",
    )
    scale.add_argument(
        "--materials", type=_positive_int, default=None, metavar="N",
        help="generate synthetic courses until ~N materials exist "
             "(streamed; use a .jsonl --out for bounded memory)",
    )
    g.set_defaults(func=cmd_generate)

    a = sub.add_parser("agreement", help="tag-agreement analysis (Figure 3)")
    a.add_argument("courses")
    a.add_argument("--label", default=None, help="course category filter (e.g. CS1)")
    a.add_argument("--weighted", action="store_true",
                   help="weight tags by material count (depth-aware variant)")
    a.set_defaults(func=cmd_agreement)

    t = sub.add_parser("types", help="NNMF course typing (Figure 2)")
    t.add_argument("courses")
    t.add_argument("-k", type=int, default=4)
    t.add_argument("--seed", type=int, default=None)
    t.set_defaults(func=cmd_types)

    f = sub.add_parser("flavors", help="NNMF flavor analysis (Figures 5/7)")
    f.add_argument("courses")
    f.add_argument("--label", default=None)
    f.add_argument("-k", type=int, default=3)
    f.add_argument("--seed", type=int, default=None)
    f.set_defaults(func=cmd_flavors)

    m = sub.add_parser("matrix", help="export the course x tag matrix as CSV")
    m.add_argument("courses")
    m.add_argument("--out", required=True)
    m.set_defaults(func=cmd_matrix)

    r = sub.add_parser("recommend", help="PDC anchor modules for a course (Section 5.2)")
    r.add_argument("courses")
    r.add_argument("--course-id", required=True)
    r.add_argument("--flavor", action="append",
                   help="discovered flavor(s) of the course; repeatable")
    r.add_argument("--top", type=int, default=5)
    r.set_defaults(func=cmd_recommend)

    ln = sub.add_parser("lint", help="data-quality screen over a corpus")
    ln.add_argument("courses")
    ln.add_argument("--format", choices=("text", "json"), default="text",
                    help="report format (default: text)")
    ln.add_argument("--fail-on", choices=("error", "warning"), default="error",
                    help="exit non-zero when findings at/above this severity "
                         "exist (default: error)")
    ln.set_defaults(func=cmd_lint)

    lc = sub.add_parser(
        "lint-code",
        help="static analysis of the codebase itself (repro.quality)",
    )
    lc.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to analyze (default: src)")
    lc.add_argument("--format", choices=("text", "json"), default="text",
                    help="report format (default: text)")
    lc.add_argument("--fail-on", choices=("error", "warning"), default="error",
                    help="exit non-zero when findings at/above this severity "
                         "exist (default: error)")
    lc.add_argument("--select", action="append",
                    metavar="RPRnnn[,RPRnnn...]", default=None,
                    help="run only the named rule(s); repeatable, comma "
                         "lists accepted")
    lc.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="analyze files in N parallel worker processes "
                         "(default: 1, serial)")
    lc.add_argument("--baseline", metavar="FILE", default=None,
                    help="subtract findings acknowledged in this baseline "
                         "JSON file")
    lc.add_argument("--write-baseline", metavar="FILE", default=None,
                    dest="write_baseline",
                    help="record every current finding into FILE and exit 0")
    lc.add_argument("--lock-graph-out", metavar="FILE", default=None,
                    dest="lock_graph_out",
                    help="also export the RPR504 lock-ordering graph as JSON")
    lc.set_defaults(func=cmd_lint_code)

    mp = sub.add_parser("map", help="2-D MDS map of whole courses")
    mp.add_argument("courses")
    mp.add_argument("--seed", type=int, default=0)
    mp.add_argument("--width", type=int, default=64)
    mp.add_argument("--height", type=int, default=18)
    mp.set_defaults(func=cmd_map)

    sc = sub.add_parser("schedule",
                        help="simulate list scheduling of a task-graph JSON")
    sc.add_argument("dag", help="task-graph JSON (see repro.io.dag_io)")
    sc.add_argument("-p", "--processors", type=int, default=4)
    sc.add_argument("--policy", default="bottom-level",
                    choices=["bottom-level", "weight", "fifo"])
    sc.add_argument("--comm-delay", type=float, default=0.0)
    sc.add_argument("--gantt", action="store_true")
    sc.add_argument("--width", type=int, default=72)
    sc.set_defaults(func=cmd_schedule)

    cp = sub.add_parser("compare", help="compare two courses (shared/unique tags)")
    cp.add_argument("courses")
    cp.add_argument("a")
    cp.add_argument("b")
    cp.set_defaults(func=cmd_compare)

    em = sub.add_parser("materials",
                        help="recommend external PDC materials for a course")
    em.add_argument("courses")
    em.add_argument("--course-id", required=True)
    em.add_argument("--top", type=int, default=5)
    em.set_defaults(func=cmd_materials)

    rep = sub.add_parser("report", help="full Markdown analysis report")
    rep.add_argument("courses")
    rep.add_argument("--out", default=None, help="write to file instead of stdout")
    rep.add_argument("--seed", type=int, default=1)
    rep.add_argument("--title", default="Course corpus analysis")
    rep.add_argument("--engine", default="dag", choices=["dag", "direct"],
                     help="'dag' runs the memoized incremental pipeline; "
                          "'direct' is the straight-line reference path")
    rep.add_argument("--no-cache", action="store_true",
                     help="recompute every DAG node, ignoring memoized results")
    rep.add_argument("--explain", action="store_true",
                     help="print per-node cached/computed stats to stderr "
                          "(dag engine)")
    rep.set_defaults(func=cmd_report)

    pg = sub.add_parser("pdc-gap", help="program-level PD coverage gap")
    pg.add_argument("courses")
    pg.add_argument("--all-tiers", action="store_true",
                    help="include elective PD entries in the gap")
    pg.add_argument("--top", type=int, default=10,
                    help="gap entries to list")
    pg.set_defaults(func=cmd_pdc_gap)

    d = sub.add_parser("deps", help="topic-dependency analysis of one course")
    d.add_argument("courses")
    d.add_argument("--course-id", required=True)
    d.add_argument("--min-dependents", type=int, default=3)
    d.set_defaults(func=cmd_deps)

    se = sub.add_parser("search", help="ranked material search (§3.1.2, indexed)")
    se.add_argument("courses")
    se.add_argument("--tag", action="append", metavar="TAG_ID",
                    help="guideline tag or internal-node id; repeatable "
                         "(internal nodes expand to the tags beneath them)")
    se.add_argument("--text", default="", help="title/description substring")
    se.add_argument("--type", default=None,
                    choices=sorted(t.value for t in MaterialType),
                    help="material type filter")
    se.add_argument("--author", default="", help="author substring")
    se.add_argument("--level", default="", help="course level (e.g. CS1)")
    se.add_argument("--language", default="", help="programming language")
    se.add_argument("--dataset", default="", help="dataset substring")
    se.add_argument("--limit", type=_nonneg_int, default=10,
                    help="max results (must be >= 0)")
    se.set_defaults(func=cmd_search)

    si = sub.add_parser("similar", help="materials most similar to one material")
    si.add_argument("courses")
    si.add_argument("--material-id", required=True)
    si.add_argument("--limit", type=_positive_int, default=10,
                    help="results to return (must be >= 1)")
    si.set_defaults(func=cmd_similar)

    h = sub.add_parser("hit-tree", help="radial hit-tree SVG for a course")
    h.add_argument("courses")
    h.add_argument("--course-id", required=True)
    h.add_argument("--out", required=True)
    h.set_defaults(func=cmd_hit_tree)

    ig = sub.add_parser(
        "ingest",
        help="tolerant corpus load: report the retained/excluded split "
             "instead of crashing on malformed records",
    )
    ig.add_argument("courses")
    ig.add_argument("--strict", action="store_true",
                    help="fail (listing every bad record) if anything is "
                         "excluded")
    ig.add_argument("--validate-tags", action="store_true",
                    help="also exclude courses whose mappings reference "
                         "tags outside the CS2013 tree")
    ig.add_argument("--allow-excluded", action="store_true",
                    help="exit 0 even when records were excluded")
    ig.add_argument("--format", choices=("text", "json"), default="text")
    ig.set_defaults(func=cmd_ingest)

    fa = sub.add_parser(
        "faults",
        help="fault-injection demo: run an NMF batch under a chaos plan "
             "and verify recovery reproduces the fault-free results",
    )
    fa.add_argument(
        "--plan",
        default="seed=7,task_error=0.2,pool_crash=0.1,task_hang=0.05,"
                "hang_s=0.2,only_first_attempt=1",
        help="REPRO_FAULTS-syntax fault plan to inject",
    )
    fa.add_argument("--fits", type=_positive_int, default=8,
                    help="batch size (number of NMF fits)")
    fa.add_argument("--rows", type=_positive_int, default=30)
    fa.add_argument("--cols", type=_positive_int, default=24)
    fa.add_argument("--seed", type=int, default=0)
    fa.add_argument("--report-out", default=None, metavar="PATH",
                    help="write the FailureReport JSON here")
    fa.set_defaults(func=cmd_faults)

    sv = sub.add_parser(
        "serve",
        help="run the analysis service: a threaded JSON API with "
             "request coalescing and worker-resident shards",
    )
    sv.add_argument("courses", nargs="?", default=None,
                    help="JSON corpus to serve (default: the canonical "
                         "20-course dataset)")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=_nonneg_int, default=8750,
                    help="listen port; 0 picks a free one (default: 8750)")
    sv.add_argument("--shards", type=_positive_int, default=4,
                    help="material shard count (default: 4)")
    sv.add_argument("--window-ms", type=_positive_float, default=10.0,
                    help="request-coalescing window in milliseconds "
                         "(default: 10)")
    sv.add_argument("--max-batch", type=_positive_int, default=32,
                    help="dispatch a batch early once this many requests "
                         "are queued (default: 32)")
    sv.add_argument("--no-coalesce", action="store_true",
                    help="dispatch every request individually (the "
                         "load-test baseline)")
    sv.add_argument("--no-resident", action="store_true",
                    help="disable the worker-resident shard pool "
                         "(ship-the-shard fan-out instead)")
    sv.add_argument("--state-dir", default=None, metavar="DIR",
                    help="persist the ingested corpus under DIR "
                         "(checksummed per-shard bundles + JSONL); a "
                         "restart with the same DIR boots warm from it")
    sv.add_argument("--deadline-ms", type=_nonneg_float, default=30000.0,
                    help="default per-request budget when the client "
                         "sends no deadline_ms; 0 = unbounded "
                         "(default: 30000)")
    sv.add_argument("--max-inflight-cheap", type=_positive_int, default=64,
                    help="admission: concurrent cheap reads (default: 64)")
    sv.add_argument("--max-queue-cheap", type=_nonneg_int, default=128,
                    help="admission: queued cheap reads before shedding "
                         "(default: 128)")
    sv.add_argument("--max-inflight-heavy", type=_positive_int, default=8,
                    help="admission: concurrent NMF-bearing requests "
                         "(default: 8)")
    sv.add_argument("--max-queue-heavy", type=_nonneg_int, default=32,
                    help="admission: queued NMF-bearing requests before "
                         "shedding (default: 32)")
    sv.add_argument("--breaker-threshold", type=_positive_int, default=5,
                    help="consecutive lane failures that open the circuit "
                         "breaker (default: 5)")
    sv.add_argument("--breaker-recovery", type=_positive_float, default=2.0,
                    help="seconds an open breaker waits before its "
                         "half-open probe (default: 2)")
    sv.add_argument("--chaos-ops", action="store_true",
                    help="enable POST /chaos fault injection (load tests "
                         "only — never on a real deployment)")
    sv.set_defaults(func=cmd_serve)

    lt = sub.add_parser(
        "loadtest",
        help="closed-loop load generator against a running service",
    )
    lt.add_argument("--host", default="127.0.0.1")
    lt.add_argument("--port", type=_positive_int, default=8750)
    lt.add_argument("--concurrency", type=_positive_int, default=8,
                    help="closed-loop client threads (default: 8)")
    lt.add_argument("--duration", type=_positive_float, default=10.0,
                    help="seconds to run (default: 10)")
    lt.add_argument("--requests", type=_positive_int, default=None,
                    metavar="N",
                    help="issue exactly N requests per worker instead of "
                         "running for --duration")
    lt.add_argument("--mix", default=None,
                    help="endpoint weights, e.g. 'search=4,typing=1' "
                         "(default: the standard mixed workload)")
    lt.add_argument("--seed", type=int, default=0,
                    help="workload RNG seed (default: 0)")
    lt.add_argument("--restarts", type=_positive_int, default=2,
                    help="NMF restarts per typing/flavors/anchors request "
                         "(default: 2)")
    lt.add_argument("--json-out", default=None, metavar="PATH",
                    help="also write the full report as JSON")
    lt.add_argument("--deadline-ms", type=_nonneg_float, default=0.0,
                    help="attach this per-request budget (X-Deadline-Ms); "
                         "0 = none (chaos mode defaults to 2000)")
    lt.add_argument("--chaos", action="store_true",
                    help="run the 3-phase overload/chaos scenario "
                         "(baseline, burst, breaker-trip) and assert the "
                         "overload invariants; exit 1 on any violation")
    lt.add_argument("--burst-concurrency", type=_positive_int, default=None,
                    help="chaos: overload-phase client threads "
                         "(default: 4x --concurrency)")
    lt.add_argument("--kill-workers", type=_nonneg_int, default=0,
                    help="chaos: SIGKILL this many resident shard workers "
                         "via POST /chaos (server needs --chaos-ops)")
    lt.set_defaults(func=cmd_loadtest)

    return p


def main(argv: Sequence[str] | None = None) -> int:
    import repro.runtime as runtime

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    runtime.configure(
        workers=args.workers,
        cache_dir=args.cache_dir if args.cache_dir is not None else ...,
        cache_enabled=False if args.no_cache else None,
        nmf_kernel=args.nmf_kernel,
        task_timeout=args.task_timeout if args.task_timeout is not None else ...,
        task_retries=args.retries,
    )
    status = args.func(args)
    if args.runtime_summary:
        print(runtime.summary(), file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
