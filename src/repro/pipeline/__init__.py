"""repro.pipeline — the incremental analysis DAG.

Declares the paper pipeline (corpus → matrix → NMF → typing/flavors →
agreement → anchors → report) as an explicit dependency DAG of
content-addressed nodes, executed through the fault-tolerant runtime
executor and memoized in the checksummed result cache, so re-running
after a small corpus change recomputes only the affected nodes.

* :mod:`~repro.pipeline.core` — the engine: :class:`Pipeline`,
  :class:`PipelineNode`, content keys with early cutoff, wave execution.
* :mod:`~repro.pipeline.report` — the report DAG:
  :func:`build_report_pipeline` plus the course/tree digest helpers.
"""

from repro.pipeline.core import (
    PIPELINE_FORMAT,
    NodeRecord,
    Pipeline,
    PipelineNode,
    PipelineRun,
    params_digest,
    value_digest,
)
from repro.pipeline.report import (
    build_report_pipeline,
    corpus_digest,
    course_digest,
    tree_digest,
)

__all__ = [
    "PIPELINE_FORMAT",
    "NodeRecord",
    "Pipeline",
    "PipelineNode",
    "PipelineRun",
    "build_report_pipeline",
    "corpus_digest",
    "course_digest",
    "params_digest",
    "tree_digest",
    "value_digest",
]
