"""The paper pipeline as a content-addressed DAG.

:func:`build_report_pipeline` decomposes ``build_report``'s straight-line
narrative — corpus → course matrix → NMF typing → per-family agreement /
flavors → per-course anchors → report sections — into an explicit
:class:`repro.pipeline.core.Pipeline` whose nodes are keyed by exactly the
inputs they read:

* the **matrix** and **typing** stages key on the whole corpus (ordered
  course digests) plus the guideline-tree digest and the config fields
  they consume;
* each **agreement** / **family-matrix** / **flavors** node keys only on
  its *family's* course digests, so editing a PDC course never touches the
  memoized CS1 flavor factorization;
* each **anchors** node keys on one course digest (plus its roster
  mixture and the module-catalog digest), so a corpus of N courses gets
  N independent, individually replayable recommendation rows;
* section/render nodes key on their upstream *values* (early cutoff: a
  recomputed-but-identical matrix leaves every factorization cached).

The assembled report is byte-identical to
:func:`repro.report.build_report_direct` — the section renderers are the
same functions, shared through :mod:`repro.report`.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache, partial
from typing import Any, Mapping, Sequence

from repro.analysis import analyze_flavors, build_course_matrix, type_courses
from repro.anchors.modules import MODULE_CATALOG
from repro.corpus.roster import ROSTER
from repro.io.json_io import course_to_dict
from repro.materials.course import Course, CourseLabel
from repro.ontology.serialize import tree_to_dict
from repro.ontology.tree import GuidelineTree
from repro.pipeline.core import Pipeline, params_digest
from repro.report import (
    AGREEMENT_LABELS,
    FLAVOR_FAMILIES,
    ReportConfig,
    _agreement_section,
    _dataset_section,
    _gap_section,
    anchors_row,
    render_anchors_section,
    render_flavors_section,
    render_report_header,
    render_types_section,
)

# -- input digests -----------------------------------------------------------


def course_digest(course: Course) -> str:
    """Content digest of one course (its canonical JSON form)."""
    return params_digest(course_to_dict(course))


def corpus_digest(courses: Sequence[Course]) -> str:
    """Order-sensitive digest of a course sequence (rows of ``A``)."""
    return params_digest([course_digest(c) for c in courses])


def tree_digest(tree: GuidelineTree) -> str:
    """Content digest of a guideline tree (its canonical JSON form)."""
    return params_digest(tree_to_dict(tree))


@lru_cache(maxsize=4)
def _catalog_digest() -> str:
    """Digest of the PDC module catalog (anchors-node key ingredient)."""
    return params_digest([dataclasses.asdict(m) for m in MODULE_CATALOG()])


def _labels_digest(courses: Sequence[Course]) -> str:
    """Digest of the course-id → labels assignment (typing-section input)."""
    return params_digest(
        [(c.id, sorted(l.value for l in c.labels)) for c in courses]
    )


# -- node functions ----------------------------------------------------------
#
# Module-level (partial-bound) so cache-miss nodes can cross the process
# boundary; each receives the mapping of dependency values last.


def _node_matrix(courses, tree, dep_values: Mapping[str, Any]):
    del dep_values
    return build_course_matrix(list(courses), tree=tree)


def _node_typing(config: ReportConfig, dep_values: Mapping[str, Any]):
    return type_courses(
        dep_values["matrix"],
        config.k_all,
        seed=config.typing_seed,
        n_restarts=config.n_restarts,
    )


def _node_dataset(courses, dep_values: Mapping[str, Any]) -> str:
    del dep_values
    return _dataset_section(courses)


def _node_types_section(
    courses, config: ReportConfig, dep_values: Mapping[str, Any]
) -> str:
    return render_types_section(dep_values["typing"], courses, config)


def _node_agreement_section(
    courses, tree, label: CourseLabel, dep_values: Mapping[str, Any]
) -> str:
    del dep_values
    return _agreement_section(courses, tree, label)


def _node_family_matrix(family, tree, dep_values: Mapping[str, Any]):
    del dep_values
    return build_course_matrix(list(family), tree=tree)


def _node_flavors_section(
    tree,
    config: ReportConfig,
    title: str,
    dep_name: str,
    dep_values: Mapping[str, Any],
) -> str:
    matrix = dep_values[dep_name]
    fa = analyze_flavors(
        matrix,
        tree,
        config.k_family,
        seed=config.flavors_seed,
        n_restarts=config.n_restarts,
    )
    return render_flavors_section(fa, matrix.course_ids, title, config)


def _node_anchors_row(
    course, mixture, top_modules: int, dep_values: Mapping[str, Any]
) -> tuple[str, str]:
    del dep_values
    return anchors_row(course, mixture, top_modules)


def _node_anchors_section(
    row_nodes: Sequence[str], dep_values: Mapping[str, Any]
) -> str:
    return render_anchors_section([dep_values[n] for n in row_nodes])


def _node_gap_section(courses, tree, dep_values: Mapping[str, Any]) -> str:
    del dep_values
    return _gap_section(courses, tree)


def _node_report(
    n_courses: int,
    tree,
    title: str,
    layout: Sequence[tuple[str, str]],
    dep_values: Mapping[str, Any],
) -> str:
    matrix = dep_values["matrix"]
    sections = render_report_header(n_courses, matrix.n_tags, tree, title)
    for kind, val in layout:
        sections.append(dep_values[val] if kind == "node" else val)
    return "\n\n".join(s for s in sections if s) + "\n"


# -- graph construction ------------------------------------------------------


def build_report_pipeline(
    courses: Sequence[Course],
    tree: GuidelineTree,
    *,
    config: ReportConfig | None = None,
    title: str = "Course corpus analysis",
) -> Pipeline:
    """Assemble the report DAG for ``courses``.

    Node weights are coarse cost estimates (factorizations dominate), so
    ``Pipeline.to_taskgraph()`` yields a meaningful work/span profile.
    """
    if not courses:
        raise ValueError("cannot report on an empty corpus")
    if config is None:
        config = ReportConfig()
    courses = list(courses)
    cdigs = {c.id: course_digest(c) for c in courses}
    corpus = params_digest([cdigs[c.id] for c in courses])
    tdig = tree_digest(tree)

    p = Pipeline()
    p.add(
        "matrix",
        partial(_node_matrix, courses, tree),
        params={"corpus": corpus, "tree": tdig},
        weight=max(len(courses) / 10.0, 1.0),
    )
    p.add(
        "typing",
        partial(_node_typing, config),
        deps=("matrix",),
        params={
            "k": config.k_all,
            "seed": config.typing_seed,
            "restarts": config.n_restarts,
        },
        weight=10.0 * config.n_restarts,
    )
    p.add(
        "section:dataset",
        partial(_node_dataset, courses),
        params={"corpus": corpus},
    )
    p.add(
        "section:types",
        partial(_node_types_section, courses, config),
        deps=("typing",),
        params={"labels": _labels_digest(courses), "k": config.k_all},
    )

    layout: list[tuple[str, str]] = [
        ("node", "section:dataset"),
        ("node", "section:types"),
        ("text", "## Agreement"),
    ]
    for label in AGREEMENT_LABELS:
        family = [c for c in courses if label in c.labels]
        name = f"section:agreement:{label.value}"
        p.add(
            name,
            partial(_node_agreement_section, family, tree, label),
            params={
                "family": params_digest([cdigs[c.id] for c in family]),
                "tree": tdig,
            },
        )
        layout.append(("node", name))

    for slug, ftitle, labels in FLAVOR_FAMILIES:
        family = [c for c in courses if labels & c.labels]
        if len(family) <= config.k_family:
            # The direct path renders nothing for an undersized family;
            # absence from the graph (and from ``layout``, which enters
            # the report node's key) encodes the same decision.
            continue
        fam_dig = params_digest([cdigs[c.id] for c in family])
        matrix_name = p.add(
            f"family-matrix:{slug}",
            partial(_node_family_matrix, family, tree),
            params={"family": fam_dig, "tree": tdig},
        )
        name = p.add(
            f"section:flavors:{slug}",
            partial(_node_flavors_section, tree, config, ftitle, matrix_name),
            deps=(matrix_name,),
            params={
                "k": config.k_family,
                "seed": config.flavors_seed,
                "restarts": config.n_restarts,
                "title": ftitle,
            },
            weight=10.0 * config.n_restarts,
        )
        layout.append(("node", name))

    mixtures = {e.id: e.mixture for e in ROSTER}
    row_nodes: list[str] = []
    for c in courses:
        mixture = mixtures.get(c.id, {})
        row_nodes.append(
            p.add(
                f"anchors:{c.id}",
                partial(_node_anchors_row, c, mixture, config.top_modules),
                params={
                    "course": cdigs[c.id],
                    "mixture": params_digest(dict(mixture)),
                    "catalog": _catalog_digest(),
                    "top": config.top_modules,
                },
            )
        )
    p.add(
        "section:anchors",
        partial(_node_anchors_section, tuple(row_nodes)),
        deps=tuple(row_nodes),
        params={"order": params_digest([c.id for c in courses])},
    )
    layout.append(("node", "section:anchors"))

    p.add(
        "section:gap",
        partial(_node_gap_section, courses, tree),
        params={"corpus": corpus, "tree": tdig},
    )
    layout.append(("node", "section:gap"))

    p.add(
        "report",
        partial(_node_report, len(courses), tree, title, tuple(layout)),
        deps=("matrix",)
        + tuple(name for kind, name in layout if kind == "node"),
        params={
            "title": title,
            "n_courses": len(courses),
            "tree": tdig,
            "layout": params_digest(layout),
        },
    )
    return p
