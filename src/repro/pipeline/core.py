"""Content-addressed pipeline DAG: declare, key, execute, memoize.

The engine behind incremental analysis (ROADMAP item 4).  A
:class:`Pipeline` is a named DAG of :class:`PipelineNode`\\ s; each node's
cache key is a SHA-256 over

* the node *name* and a pipeline format version,
* its **params** — canonical digests of every out-of-graph input the node
  reads (course digests, the guideline-tree digest, config fields), and
* the **output digests of its dependencies** (not their keys).

Keying on dependency *outputs* rather than dependency *keys* gives the
early-cutoff property of Bazel/salsa-style build systems: when an input
change forces a node to recompute but the recomputed value is bit-identical
(e.g. a course gains a material whose tags it already covered, so the
course matrix is unchanged), every node downstream still hits the cache.
Recomputation stops at the first node whose *value* actually changed.

Execution walks the DAG in Kahn waves (all ready nodes at once); each
wave's cache misses fan out through the fault-tolerant
:func:`repro.runtime.executor.parallel_map`, so node retries, pool
rebuilds, and quarantine apply per node, and deterministic node functions
make recovery bit-identical.  Results are memoized in the checksummed
:class:`repro.runtime.cache.ResultCache` (memory LRU + optional on-disk
``.npz`` layer), values traveling as pickled byte arrays, so warm re-runs
replay across process restarts too.

The DAG itself is a :class:`repro.taskgraph.dag.TaskGraph` (the previously
benchmark-only subsystem now drives real work): :meth:`Pipeline.to_taskgraph`
exposes it for work/span/parallelism analysis and scheduling experiments.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.runtime.cache import ResultCache, result_cache
from repro.runtime.executor import parallel_map
from repro.runtime.metrics import metrics
from repro.taskgraph.dag import TaskGraph

#: Pipeline cache-format version; bump to invalidate every memoized node.
PIPELINE_FORMAT = 1

#: Pickle protocol pinned so value digests are stable across interpreters.
_PICKLE_PROTOCOL = 4


def value_digest(raw: bytes) -> str:
    """SHA-256 hex digest of a node's serialized output value."""
    return hashlib.sha256(raw).hexdigest()


def params_digest(obj: Any) -> str:
    """Canonical digest of a JSON-representable parameter structure.

    ``sort_keys`` makes dict ordering irrelevant; the separator choice
    removes whitespace ambiguity.  Use this to fold structured inputs
    (course dicts, config mappings, label assignments) into node params.
    """
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class PipelineNode:
    """One unit of the analysis DAG.

    ``fn`` receives a mapping ``dep name -> dep value`` and returns the
    node's value; it must be deterministic and picklable (module-level
    functions or :func:`functools.partial` over them), since cache-miss
    nodes may execute in worker processes.  ``params`` is a flat mapping
    of scalar/str values — digests for anything structured — covering
    every out-of-graph input the function reads.  ``weight`` is a cost
    estimate feeding the :class:`TaskGraph` work/span analysis.
    """

    name: str
    fn: Callable[[Mapping[str, Any]], Any]
    deps: tuple[str, ...] = ()
    params: tuple[tuple[str, str], ...] = ()
    weight: float = 1.0

    def key(self, dep_digests: Mapping[str, str]) -> str:
        """Content-addressed cache key given dependency output digests."""
        h = hashlib.sha256()
        h.update(f"pipeline:v{PIPELINE_FORMAT}:{self.name}".encode())
        for name, val in self.params:
            h.update(f"|{name}={val}".encode())
        for dep in sorted(self.deps):
            h.update(f"|dep:{dep}={dep_digests[dep]}".encode())
        return h.hexdigest()


def _freeze_params(params: Mapping[str, Any] | None) -> tuple[tuple[str, str], ...]:
    """Normalize a params mapping to a sorted tuple of string pairs."""
    if not params:
        return ()
    out = []
    for name in sorted(params):
        val = params[name]
        out.append((name, f"{type(val).__name__}:{val!r}"))
    return tuple(out)


def _run_node(payload: tuple) -> Any:
    """Execute one node; module-level for pool picklability."""
    fn, dep_values = payload
    return fn(dep_values)


@dataclass(frozen=True)
class NodeRecord:
    """How one node resolved during a run."""

    name: str
    key: str
    digest: str
    status: str  # "hit" | "computed"


@dataclass
class PipelineRun:
    """Values and cache accounting of one :meth:`Pipeline.run`."""

    values: dict[str, Any]
    records: dict[str, NodeRecord]
    order: tuple[str, ...] = ()

    @property
    def n_hits(self) -> int:
        return sum(1 for r in self.records.values() if r.status == "hit")

    @property
    def n_computed(self) -> int:
        return sum(1 for r in self.records.values() if r.status == "computed")

    def value(self, name: str) -> Any:
        return self.values[name]

    def computed_nodes(self) -> list[str]:
        """Names of nodes that actually ran, in execution order."""
        return [n for n in self.order if self.records[n].status == "computed"]

    def hit_nodes(self) -> list[str]:
        """Names of nodes replayed from cache, in execution order."""
        return [n for n in self.order if self.records[n].status == "hit"]

    def explain(self) -> str:
        """Human-readable per-node hit/computed table."""
        lines = [f"{len(self.records)} nodes: "
                 f"{self.n_hits} cached, {self.n_computed} computed"]
        for name in self.order:
            rec = self.records[name]
            lines.append(f"  [{rec.status:>8}] {name}")
        return "\n".join(lines)


class Pipeline:
    """A named DAG of content-addressed analysis nodes."""

    def __init__(self) -> None:
        self._nodes: dict[str, PipelineNode] = {}

    def add(
        self,
        name: str,
        fn: Callable[[Mapping[str, Any]], Any],
        *,
        deps: Sequence[str] = (),
        params: Mapping[str, Any] | None = None,
        weight: float = 1.0,
    ) -> str:
        """Register a node; dependencies must already be registered."""
        if name in self._nodes:
            raise ValueError(f"duplicate pipeline node {name!r}")
        for dep in deps:
            if dep not in self._nodes:
                raise ValueError(
                    f"node {name!r} depends on unregistered node {dep!r}"
                )
        if weight <= 0:
            raise ValueError(f"node {name!r} weight must be > 0, got {weight}")
        self._nodes[name] = PipelineNode(
            name=name,
            fn=fn,
            deps=tuple(deps),
            params=_freeze_params(params),
            weight=float(weight),
        )
        return name

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> PipelineNode:
        return self._nodes[name]

    def names(self) -> list[str]:
        return list(self._nodes)

    def to_taskgraph(self) -> TaskGraph:
        """The pipeline as a weighted :class:`TaskGraph`.

        Real analysis work finally drives the taskgraph subsystem: the
        returned graph supports the full work/span/parallelism and
        list-scheduling toolbox (registration order already prevents
        cycles; construction re-validates acyclicity anyway).
        """
        weights = {n.name: n.weight for n in self._nodes.values()}
        edges = [
            (dep, n.name) for n in self._nodes.values() for dep in n.deps
        ]
        return TaskGraph.from_edges(weights, edges)

    def _waves(self) -> list[list[str]]:
        """Kahn antichains: every node whose deps are all in earlier waves."""
        remaining = {n: len(self._nodes[n].deps) for n in self._nodes}
        wave = sorted(n for n, c in remaining.items() if c == 0)
        waves: list[list[str]] = []
        done: set[str] = set()
        succ: dict[str, list[str]] = {n: [] for n in self._nodes}
        for node in self._nodes.values():
            for dep in node.deps:
                succ[dep].append(node.name)
        while wave:
            waves.append(wave)
            done.update(wave)
            ready: list[str] = []
            for n in wave:
                for s in succ[n]:
                    remaining[s] -= 1
                    if remaining[s] == 0:
                        ready.append(s)
            wave = sorted(ready)
        if len(done) != len(self._nodes):
            raise ValueError("pipeline graph contains a cycle")
        return waves

    def run(
        self,
        *,
        workers: int | None = None,
        cache: ResultCache | None = None,
        use_cache: bool = True,
    ) -> PipelineRun:
        """Execute the DAG, replaying memoized nodes and computing the rest.

        ``workers`` fans each wave's cache misses out through
        :func:`parallel_map` (serial when 1/unset); ``cache`` overrides
        the process-global :data:`repro.runtime.cache.result_cache`;
        ``use_cache=False`` recomputes every node without reading or
        writing memoized values.
        """
        store = cache if cache is not None else result_cache
        values: dict[str, Any] = {}
        digests: dict[str, str] = {}
        records: dict[str, NodeRecord] = {}
        order: list[str] = []
        metrics.inc("pipeline.runs")
        with metrics.timer("pipeline.run"):
            for wave in self._waves():
                pending: list[tuple[str, str]] = []
                for name in wave:
                    node = self._nodes[name]
                    key = node.key(digests)
                    hit = store.get(key) if use_cache else None
                    if hit is not None:
                        raw = hit["value"].tobytes()
                        values[name] = pickle.loads(raw)
                        digests[name] = value_digest(raw)
                        records[name] = NodeRecord(name, key, digests[name], "hit")
                        metrics.inc("pipeline.node_hit")
                    else:
                        pending.append((name, key))
                    order.append(name)
                if not pending:
                    continue
                payloads = [
                    (
                        self._nodes[name].fn,
                        {d: values[d] for d in self._nodes[name].deps},
                    )
                    for name, _ in pending
                ]
                outs = parallel_map(_run_node, payloads, workers=workers)
                for (name, key), out in zip(pending, outs):
                    raw = pickle.dumps(out, protocol=_PICKLE_PROTOCOL)
                    values[name] = out
                    digests[name] = value_digest(raw)
                    records[name] = NodeRecord(name, key, digests[name], "computed")
                    metrics.inc("pipeline.node_computed")
                    if use_cache:
                        store.put(
                            key, {"value": np.frombuffer(raw, dtype=np.uint8)}
                        )
        return PipelineRun(values=values, records=records, order=tuple(order))
