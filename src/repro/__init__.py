"""repro — reproduction of "Data-Driven Discovery of Anchor Points for PDC
Content" (McQuaigue, Saule, Subramanian, Payton; SC-W / EduHPC 2023).

The package re-builds the paper's entire stack from scratch:

* the **curriculum guidelines** the paper classifies against
  (:mod:`repro.curriculum`: ACM/IEEE CS2013 and NSF/TCPP PDC12, plus their
  crosswalk) on a generic ontology engine (:mod:`repro.ontology`);
* a complete **CS Materials** system (:mod:`repro.materials`): materials,
  courses, repository search, similarity graphs, MDS search maps,
  coverage/alignment analysis, hit-trees, and the bi-clustered matrix view;
* the **factorization stack** (:mod:`repro.factorization`): NNMF
  (multiplicative updates and HALS), PCA, classical MDS and SMACOF,
  k-means++, spectral co-clustering;
* a calibrated **synthetic corpus** (:mod:`repro.corpus`) and **workshop
  simulation** (:mod:`repro.workshops`) standing in for the unpublished
  workshop data;
* the paper's **analyses** (:mod:`repro.analysis`): the course x tag
  matrix, agreement distributions and trees, NNMF course typing and flavor
  discovery, and model selection;
* the **anchor-point recommender** (:mod:`repro.anchors`) operationalizing
  Section 5.2, with a **task-graph/list-scheduling substrate**
  (:mod:`repro.taskgraph`) implementing the PDC assignment content the
  paper proposes;
* text/SVG **visualization** (:mod:`repro.viz`) for the heat maps, radial
  hit-trees, and agreement plots.

Quickstart::

    from repro import load_canonical_dataset, analyze_flavors, CourseLabel
    tree, courses, matrix = load_canonical_dataset()
    cs1 = matrix.subset([c.id for c in courses if CourseLabel.CS1 in c.labels])
    flavors = analyze_flavors(cs1, tree, k=3, seed=1)
    for p in flavors.profiles:
        print(p.index, p.dominant_area, p.member_courses)
"""

from repro.analysis import (
    AgreementResult,
    CourseMatrix,
    CourseTyping,
    FlavorAnalysis,
    KSweepEntry,
    TypeProfile,
    agreement,
    agreement_tree,
    analyze_flavors,
    build_course_matrix,
    duplicate_dimension_score,
    k_sweep,
    select_k,
    singleton_dimension_score,
    stability_score,
    type_courses,
)
from repro.canonical import (
    CANONICAL_CORPUS_SEED,
    FIG2_NMF_SEED,
    FIG5_NMF_SEED,
    FIG7_NMF_SEED,
    load_canonical_dataset,
)
from repro.corpus import (
    ARCHETYPES,
    EXCLUDED_ROSTER,
    ROSTER,
    Archetype,
    CorpusConfig,
    RosterEntry,
    generate_corpus,
    generate_course,
    synthetic_roster,
)
from repro.curriculum import load_crosswalk, load_cs2013, load_pdc12
from repro.factorization import (
    NMF,
    PCA,
    KMeans,
    SpectralCoclustering,
    classical_mds,
    smacof,
)
from repro.materials import (
    Course,
    CourseLabel,
    Material,
    MaterialRepository,
    MaterialRole,
    MaterialType,
    SearchQuery,
    alignment,
    build_hit_tree,
    build_matrix_view,
    coverage,
    search_map,
    similarity_graph,
)
from repro.workshops import WorkshopSeries, simulate_workshop_series
from repro import runtime

__version__ = "1.0.0"

__all__ = [
    # canonical dataset
    "CANONICAL_CORPUS_SEED",
    "FIG2_NMF_SEED",
    "FIG5_NMF_SEED",
    "FIG7_NMF_SEED",
    "load_canonical_dataset",
    # curriculum
    "load_cs2013",
    "load_pdc12",
    "load_crosswalk",
    # materials system
    "Material",
    "MaterialType",
    "MaterialRole",
    "Course",
    "CourseLabel",
    "MaterialRepository",
    "SearchQuery",
    "coverage",
    "alignment",
    "build_hit_tree",
    "build_matrix_view",
    "search_map",
    "similarity_graph",
    # corpus + workshops
    "Archetype",
    "ARCHETYPES",
    "ROSTER",
    "EXCLUDED_ROSTER",
    "RosterEntry",
    "CorpusConfig",
    "generate_corpus",
    "generate_course",
    "synthetic_roster",
    "WorkshopSeries",
    "simulate_workshop_series",
    # factorization
    "NMF",
    "PCA",
    "KMeans",
    "SpectralCoclustering",
    "classical_mds",
    "smacof",
    # analysis
    "CourseMatrix",
    "build_course_matrix",
    "AgreementResult",
    "agreement",
    "agreement_tree",
    "CourseTyping",
    "type_courses",
    "FlavorAnalysis",
    "TypeProfile",
    "analyze_flavors",
    "KSweepEntry",
    "k_sweep",
    "select_k",
    "duplicate_dimension_score",
    "singleton_dimension_score",
    "stability_score",
    # execution substrate
    "runtime",
]
