"""List scheduling with communication delays.

The classic extension of the §5.2 simulator: when a task's predecessor ran
on a *different* processor, its result must travel — the task cannot start
until ``pred.finish + comm_delay``.  With zero delay this reduces exactly
to :func:`repro.taskgraph.scheduling.list_schedule`'s model; with large
delays, clustering dependent tasks on one processor beats spreading them,
which is why naive parallelization can lose (data locality, the PDC12
"Data locality and its performance impact" topic).

The simulator keeps the list-scheduling skeleton (greedy over a priority
queue) but evaluates, for each dispatch, the earliest start on every idle
processor given where the predecessors ran.
"""

from __future__ import annotations

import heapq

from repro.taskgraph.dag import TaskGraph
from repro.taskgraph.scheduling import (
    PRIORITY_POLICIES,
    TIME_EPS,
    Schedule,
    ScheduledTask,
)


def list_schedule_comm(
    graph: TaskGraph,
    n_processors: int,
    *,
    comm_delay: float = 0.0,
    policy: str = "bottom-level",
) -> Schedule:
    """Greedy list scheduling under a uniform communication delay.

    At every dispatch point the highest-priority ready task is placed on
    the idle processor where it can start earliest (its *data-ready* time:
    max over predecessors of finish, plus ``comm_delay`` if the predecessor
    ran elsewhere).  Note: with ``comm_delay > 0`` the resulting makespan
    is *not* validated by :meth:`Schedule.validate` (which assumes
    zero-cost communication); use :func:`validate_comm_schedule`.
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    if comm_delay < 0:
        raise ValueError("comm_delay must be >= 0")
    try:
        priority_of = PRIORITY_POLICIES[policy](graph)
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; choose from {sorted(PRIORITY_POLICIES)}"
        ) from None

    remaining = {t: len(graph.predecessors(t)) for t in graph.weights}
    placed: dict[str, ScheduledTask] = {}
    proc_free = [0.0] * n_processors
    ready: list[tuple[float, str]] = [
        (-priority_of(t), t) for t, c in remaining.items() if c == 0
    ]
    heapq.heapify(ready)
    pending: list[str] = []

    while ready or pending:
        # Refill ready with tasks unblocked since the last dispatch round.
        for t in pending:
            heapq.heappush(ready, (-priority_of(t), t))
        pending = []
        if not ready:
            break
        _, task = heapq.heappop(ready)
        # Earliest start per processor given predecessor placement.
        best_proc, best_start = 0, float("inf")
        for p in range(n_processors):
            start = proc_free[p]
            for pred in graph.predecessors(task):
                pf = placed[pred]
                arrival = pf.finish + (comm_delay if pf.processor != p else 0.0)
                start = max(start, arrival)
            if start < best_start - TIME_EPS:
                best_start, best_proc = start, p
        finish = best_start + graph.weights[task]
        placed[task] = ScheduledTask(task, best_proc, best_start, finish)
        proc_free[best_proc] = finish
        for succ in graph.successors[task]:
            remaining[succ] -= 1
            if remaining[succ] == 0:
                pending.append(succ)

    if len(placed) != graph.n_tasks:
        raise RuntimeError("scheduling stalled before all tasks were placed")
    makespan = max((p.finish for p in placed.values()), default=0.0)
    return Schedule(
        graph, n_processors, tuple(placed[t] for t in sorted(placed)), makespan
    )


def validate_comm_schedule(schedule: Schedule, comm_delay: float) -> None:
    """Feasibility check under the communication-delay model."""
    by_task = {p.task: p for p in schedule.placements}
    if set(by_task) != set(schedule.graph.weights):
        raise ValueError("schedule does not place every task exactly once")
    for proc in range(schedule.n_processors):
        tl = schedule.processor_timeline(proc)
        for a, b in zip(tl, tl[1:]):
            if b.start < a.finish - TIME_EPS:
                raise ValueError(f"overlap on processor {proc}")
    for p in schedule.placements:
        if abs((p.finish - p.start) - schedule.graph.weights[p.task]) > TIME_EPS:
            raise ValueError(f"duration mismatch for {p.task}")
        for pred in schedule.graph.predecessors(p.task):
            pf = by_task[pred]
            arrival = pf.finish + (comm_delay if pf.processor != p.processor else 0.0)
            if p.start < arrival - TIME_EPS:
                raise ValueError(
                    f"{p.task} starts before data from {pred} arrives"
                )
