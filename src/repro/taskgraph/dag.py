"""Directed acyclic task graphs with work/span analysis.

A :class:`TaskGraph` is the "Parallel Task Graph model of parallel codes"
(§5.2): vertices are tasks with non-negative weights (execution times),
edges are dependencies.  The analysis metrics are the standard ones of
parallel algorithm theory: *work* (total weight), *span* (critical-path
weight), and *parallelism* (work/span).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.util.rng import RngLike, as_rng


@dataclass
class TaskGraph:
    """A weighted DAG of tasks.

    ``weights`` maps task id → execution time; ``successors`` holds the
    dependency adjacency (edge u → v means v cannot start before u ends).
    Construction validates acyclicity.
    """

    weights: dict[str, float]
    successors: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # dict.fromkeys drops duplicate successor entries (parallel edges)
        # while preserving insertion order — see ``from_edges``.
        self.successors = {
            t: tuple(dict.fromkeys(self.successors.get(t, ())))
            for t in self.weights
        }
        for t, w in self.weights.items():
            if w < 0:
                raise ValueError(f"task {t!r} has negative weight {w}")
        for u, vs in self.successors.items():
            for v in vs:
                if v not in self.weights:
                    raise ValueError(f"edge {u!r}->{v!r} references unknown task")
        self._predecessors: dict[str, list[str]] = {t: [] for t in self.weights}
        for u, vs in self.successors.items():
            for v in vs:
                self._predecessors[v].append(u)
        # Raises on cycles.
        self._topo = self._topological_sort()

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        weights: Mapping[str, float],
        edges: Iterable[tuple[str, str]],
    ) -> "TaskGraph":
        """Build from an edge list; duplicate ``(u, v)`` pairs collapse.

        A repeated edge carries no extra dependency information, but if
        kept it would inflate ``n_edges`` and ``predecessors()`` and make
        ``list_schedule``'s readiness counting double-decrement.  First
        occurrence wins, preserving insertion order.
        """
        succ: dict[str, dict[str, None]] = {}
        for u, v in edges:
            succ.setdefault(u, {})[v] = None
        return cls(dict(weights), {u: tuple(vs) for u, vs in succ.items()})

    # -- structure --------------------------------------------------------------

    @property
    def n_tasks(self) -> int:
        return len(self.weights)

    @property
    def n_edges(self) -> int:
        return sum(len(v) for v in self.successors.values())

    def predecessors(self, task: str) -> tuple[str, ...]:
        return tuple(self._predecessors[task])

    def sources(self) -> list[str]:
        """Tasks with no predecessors."""
        return [t for t, ps in self._predecessors.items() if not ps]

    def sinks(self) -> list[str]:
        """Tasks with no successors."""
        return [t for t, ss in self.successors.items() if not ss]

    def _topological_sort(self) -> list[str]:
        """Kahn's algorithm; deterministic (lexicographic among ready tasks)."""
        indeg = {t: len(ps) for t, ps in self._predecessors.items()}
        ready = sorted(t for t, d in indeg.items() if d == 0)
        queue = deque(ready)
        order: list[str] = []
        while queue:
            t = queue.popleft()
            order.append(t)
            newly_ready = []
            for v in self.successors[t]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    newly_ready.append(v)
            for v in sorted(newly_ready):
                queue.append(v)
        if len(order) != len(self.weights):
            raise ValueError("task graph contains a cycle")
        return order

    def topological_order(self) -> list[str]:
        """A feasible serial execution order (the §5.2 student exercise)."""
        return list(self._topo)

    # -- metrics -----------------------------------------------------------------

    def work(self) -> float:
        """Total execution time on one processor (T_1)."""
        return float(sum(self.weights.values()))

    def span(self) -> float:
        """Critical-path length (T_inf)."""
        return max(self.critical_path_lengths().values(), default=0.0)

    def critical_path_lengths(self) -> dict[str, float]:
        """Task → longest weighted path ending at (and including) the task."""
        dist: dict[str, float] = {}
        for t in self._topo:
            preds = self._predecessors[t]
            best = max((dist[p] for p in preds), default=0.0)
            dist[t] = best + self.weights[t]
        return dist

    def critical_path(self) -> list[str]:
        """One longest path, source → sink."""
        dist = self.critical_path_lengths()
        if not dist:
            return []
        end = max(dist, key=lambda t: dist[t])
        path = [end]
        while True:
            preds = self._predecessors[path[-1]]
            if not preds:
                break
            path.append(max(preds, key=lambda p: dist[p]))
        return path[::-1]

    def parallelism(self) -> float:
        """Average parallelism work/span; 0 for an empty graph."""
        s = self.span()
        return self.work() / s if s > 0 else 0.0

    def bottom_levels(self) -> dict[str, float]:
        """Task → longest weighted path from the task to any sink (inclusive).

        The classic HLF/CP list-scheduling priority.
        """
        level: dict[str, float] = {}
        for t in reversed(self._topo):
            succ = self.successors[t]
            best = max((level[s] for s in succ), default=0.0)
            level[t] = best + self.weights[t]
        return level


# -- generators -------------------------------------------------------------------


def layered_random_dag(
    n_layers: int,
    width: int,
    *,
    edge_prob: float = 0.35,
    seed: RngLike = None,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> TaskGraph:
    """Random layered DAG: edges only between consecutive layers.

    The standard scheduling-benchmark topology; every layer-``i`` task may
    depend on any layer-``i-1`` task with probability ``edge_prob`` (at
    least one edge is forced so layers stay ordered).
    """
    if n_layers < 1 or width < 1:
        raise ValueError("n_layers and width must be >= 1")
    rng = as_rng(seed)
    lo, hi = weight_range
    weights: dict[str, float] = {}
    edges: list[tuple[str, str]] = []
    for layer in range(n_layers):
        for j in range(width):
            weights[f"t{layer}_{j}"] = float(rng.uniform(lo, hi))
    for layer in range(1, n_layers):
        for j in range(width):
            parents = [p for p in range(width) if rng.random() < edge_prob]
            if not parents:
                parents = [int(rng.integers(width))]
            for p in parents:
                edges.append((f"t{layer - 1}_{p}", f"t{layer}_{j}"))
    return TaskGraph.from_edges(weights, edges)


def fork_join_dag(
    n_tasks: int,
    *,
    seed: RngLike = None,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> TaskGraph:
    """Fork-join (embarrassingly parallel middle): source → n tasks → sink."""
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    rng = as_rng(seed)
    lo, hi = weight_range
    weights = {"fork": 1.0, "join": 1.0}
    edges = []
    for i in range(n_tasks):
        t = f"w{i}"
        weights[t] = float(rng.uniform(lo, hi))
        edges.append(("fork", t))
        edges.append((t, "join"))
    return TaskGraph.from_edges(weights, edges)


def divide_and_conquer_dag(
    depth: int,
    *,
    leaf_weight: float = 4.0,
    node_weight: float = 1.0,
) -> TaskGraph:
    """Binary divide-and-conquer: split tree, leaf work, then merge tree.

    The topology of recursive task-based parallelism (cilk-style spawn);
    span grows as O(depth) while work grows as O(2^depth).
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    weights: dict[str, float] = {}
    edges: list[tuple[str, str]] = []

    def build(path: str, d: int) -> tuple[str, str]:
        """Returns (entry task, exit task) of the subtree."""
        if d == 0:
            leaf = f"leaf{path}"
            weights[leaf] = leaf_weight
            return leaf, leaf
        split, merge = f"split{path}", f"merge{path}"
        weights[split] = node_weight
        weights[merge] = node_weight
        for side in ("0", "1"):
            entry, exit_ = build(path + side, d - 1)
            edges.append((split, entry))
            edges.append((exit_, merge))
        return split, merge

    build("", depth)
    return TaskGraph.from_edges(weights, edges)


def reduction_tree_dag(
    n_leaves: int,
    *,
    leaf_weight: float = 1.0,
    combine_weight: float = 1.0,
) -> TaskGraph:
    """Binary reduction tree: n leaves combined pairwise up to one root.

    The structure of a parallel reduction (§5.2's reduction-ordering
    module): work O(n), span O(log n).  ``n_leaves`` need not be a power of
    two — odd elements are carried upward.
    """
    if n_leaves < 1:
        raise ValueError("n_leaves must be >= 1")
    weights: dict[str, float] = {}
    edges: list[tuple[str, str]] = []
    level = []
    for i in range(n_leaves):
        name = f"leaf{i}"
        weights[name] = leaf_weight
        level.append(name)
    depth = 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            name = f"c{depth}_{i // 2}"
            weights[name] = combine_weight
            edges.append((level[i], name))
            edges.append((level[i + 1], name))
            nxt.append(name)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        depth += 1
    return TaskGraph.from_edges(weights, edges)


def pipeline_dag(
    n_stages: int,
    n_items: int,
    *,
    stage_weight: float = 1.0,
) -> TaskGraph:
    """Software pipeline: every item passes through every stage in order.

    Task (s, i) depends on (s-1, i) (same item, previous stage) and
    (s, i-1) (stage busy with the previous item) — the classic pipelined
    producer-consumer dependency pattern; parallelism approaches
    ``min(n_stages, n_items)``.
    """
    if n_stages < 1 or n_items < 1:
        raise ValueError("n_stages and n_items must be >= 1")
    weights = {
        f"s{s}_i{i}": stage_weight
        for s in range(n_stages)
        for i in range(n_items)
    }
    edges = []
    for s in range(n_stages):
        for i in range(n_items):
            if s + 1 < n_stages:
                edges.append((f"s{s}_i{i}", f"s{s + 1}_i{i}"))
            if i + 1 < n_items:
                edges.append((f"s{s}_i{i}", f"s{s}_i{i + 1}"))
    return TaskGraph.from_edges(weights, edges)


def wavefront_dag(
    rows: int,
    cols: int,
    *,
    weight: float = 1.0,
) -> TaskGraph:
    """Bottom-up dynamic-programming wavefront: cell (i,j) needs (i-1,j), (i,j-1).

    The dependency pattern of §5.2's "bottom-up parallelism" discussion —
    anti-diagonals can run as parallel-for loops.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    weights = {f"c{i}_{j}": weight for i in range(rows) for j in range(cols)}
    edges = []
    for i in range(rows):
        for j in range(cols):
            if i + 1 < rows:
                edges.append((f"c{i}_{j}", f"c{i + 1}_{j}"))
            if j + 1 < cols:
                edges.append((f"c{i}_{j}", f"c{i}_{j + 1}"))
    return TaskGraph.from_edges(weights, edges)
