"""Classic parallel-performance laws.

Amdahl's law appears throughout the PD guidelines (and the paper's PDC12
encoding); Gustafson covers the weak-scaling counterpoint; Brent's bound
connects work/span to achievable p-processor time.
"""

from __future__ import annotations


def amdahl_speedup(serial_fraction: float, p: int) -> float:
    """Speedup on ``p`` processors with a ``serial_fraction`` of the work serial.

    ``S(p) = 1 / (f + (1 - f)/p)``.
    """
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial_fraction must be in [0,1], got {serial_fraction}")
    if p < 1:
        raise ValueError("p must be >= 1")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / p)


def gustafson_speedup(serial_fraction: float, p: int) -> float:
    """Scaled speedup with problem size grown to fill ``p`` processors.

    ``S(p) = f + (1 - f) * p``.
    """
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial_fraction must be in [0,1], got {serial_fraction}")
    if p < 1:
        raise ValueError("p must be >= 1")
    return serial_fraction + (1.0 - serial_fraction) * p


def brent_bound(work: float, span: float, p: int) -> float:
    """Brent's theorem upper bound on greedy p-processor execution time.

    ``T_p <= work / p + span``.
    """
    if work < 0 or span < 0:
        raise ValueError("work and span must be >= 0")
    if p < 1:
        raise ValueError("p must be >= 1")
    return work / p + span
