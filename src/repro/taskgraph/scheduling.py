"""List-scheduling simulator.

"Implementing a list-scheduling simulator would be a good application of
priority queues, and graphs" (§5.2).  The simulator is event-driven over a
heap of task completions: whenever a processor is free and tasks are ready,
the highest-priority ready task is dispatched.  Priority policies:

* ``"bottom-level"`` — critical-path-first (HLF); the classic heuristic.
* ``"weight"`` — longest processing time first.
* ``"fifo"`` — topological/arrival order.

Graham's bound guarantees any list schedule is within 2 - 1/p of optimal;
tests assert the simulator respects the work/span lower bounds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from repro.taskgraph.dag import TaskGraph

#: Time tolerance shared by the schedulers and their validators.  One
#: constant for both sides: the simulators batch "simultaneous" events and
#: break processor ties with the same epsilon that ``Schedule.validate`` /
#: ``validate_comm_schedule`` accept, so a simulated schedule can never be
#: rejected by its own feasibility check over float noise.
TIME_EPS = 1e-9

#: policy name -> (graph -> task -> priority); larger priority runs first.
PRIORITY_POLICIES: dict[str, Callable[[TaskGraph], Callable[[str], float]]] = {
    "bottom-level": lambda g: (lambda levels: (lambda t: levels[t]))(g.bottom_levels()),
    "weight": lambda g: (lambda t: g.weights[t]),
    "fifo": lambda g: (lambda order: (lambda t: -order[t]))(
        {t: i for i, t in enumerate(g.topological_order())}
    ),
}


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of one task in the simulated schedule."""

    task: str
    processor: int
    start: float
    finish: float


@dataclass(frozen=True)
class Schedule:
    """A complete simulated execution."""

    graph: TaskGraph
    n_processors: int
    placements: tuple[ScheduledTask, ...]
    makespan: float

    def speedup(self) -> float:
        """T_1 / T_p."""
        return self.graph.work() / self.makespan if self.makespan > 0 else 0.0

    def efficiency(self) -> float:
        """Speedup / p."""
        return self.speedup() / self.n_processors

    def lower_bound(self) -> float:
        """max(T_1 / p, T_inf) — no schedule can beat this."""
        return max(self.graph.work() / self.n_processors, self.graph.span())

    def processor_timeline(self, processor: int) -> list[ScheduledTask]:
        """Tasks run by one processor, in start order."""
        return sorted(
            (p for p in self.placements if p.processor == processor),
            key=lambda p: p.start,
        )

    def utilization(self) -> list[float]:
        """Busy fraction of each processor over the makespan."""
        if self.makespan <= 0:
            return [0.0] * self.n_processors
        busy = [0.0] * self.n_processors
        for p in self.placements:
            busy[p.processor] += p.finish - p.start
        return [b / self.makespan for b in busy]

    def idle_time(self) -> float:
        """Total processor-time spent idle across the schedule."""
        return self.n_processors * self.makespan - self.graph.work()

    def to_dict(self) -> dict:
        """JSON-compatible export of the schedule."""
        return {
            "format": "repro-schedule",
            "version": 1,
            "n_processors": self.n_processors,
            "makespan": self.makespan,
            "placements": [
                {
                    "task": p.task,
                    "processor": p.processor,
                    "start": p.start,
                    "finish": p.finish,
                }
                for p in sorted(self.placements, key=lambda p: (p.start, p.task))
            ],
        }

    def validate(self) -> None:
        """Check schedule feasibility; raise ``ValueError`` on violation.

        Invariants: every task placed exactly once; no processor overlap;
        every task starts no earlier than all its predecessors finish.
        """
        by_task = {p.task: p for p in self.placements}
        if set(by_task) != set(self.graph.weights):
            raise ValueError("schedule does not place every task exactly once")
        if len(by_task) != len(self.placements):
            raise ValueError("a task is placed more than once")
        for proc in range(self.n_processors):
            timeline = self.processor_timeline(proc)
            for a, b in zip(timeline, timeline[1:]):
                if b.start < a.finish - TIME_EPS:
                    raise ValueError(f"overlap on processor {proc}: {a} vs {b}")
        for p in self.placements:
            if abs((p.finish - p.start) - self.graph.weights[p.task]) > TIME_EPS:
                raise ValueError(f"duration mismatch for {p.task}")
            for pred in self.graph.predecessors(p.task):
                if p.start < by_task[pred].finish - TIME_EPS:
                    raise ValueError(
                        f"{p.task} starts before predecessor {pred} finishes"
                    )


def list_schedule(
    graph: TaskGraph,
    n_processors: int,
    *,
    policy: str = "bottom-level",
) -> Schedule:
    """Simulate list scheduling of ``graph`` on ``n_processors``.

    Event-driven simulation: a ready-queue (max-heap keyed by policy
    priority) plus a completion heap.  Ties break deterministically on
    task id.
    """
    if n_processors < 1:
        raise ValueError("n_processors must be >= 1")
    try:
        priority_of = PRIORITY_POLICIES[policy](graph)
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; choose from {sorted(PRIORITY_POLICIES)}"
        ) from None

    remaining_preds = {t: len(graph.predecessors(t)) for t in graph.weights}
    ready: list[tuple[float, str]] = [
        (-priority_of(t), t) for t, c in remaining_preds.items() if c == 0
    ]
    heapq.heapify(ready)
    free_procs = list(range(n_processors - 1, -1, -1))
    running: list[tuple[float, str, int]] = []  # (finish, task, proc)
    placements: list[ScheduledTask] = []
    now = 0.0
    n_done = 0
    while n_done < graph.n_tasks:
        # Dispatch while a processor and a ready task are available.
        while free_procs and ready:
            _, task = heapq.heappop(ready)
            proc = free_procs.pop()
            finish = now + graph.weights[task]
            placements.append(ScheduledTask(task, proc, now, finish))
            heapq.heappush(running, (finish, task, proc))
        if not running:
            raise RuntimeError("deadlock: no running tasks but work remains")
        # Advance to the next completion; release everything finishing then.
        now, task, proc = heapq.heappop(running)
        finished = [(task, proc)]
        while running and running[0][0] <= now + TIME_EPS:
            _, t2, p2 = heapq.heappop(running)
            finished.append((t2, p2))
        for t2, p2 in finished:
            n_done += 1
            free_procs.append(p2)
            for succ in graph.successors[t2]:
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    heapq.heappush(ready, (-priority_of(succ), succ))
    makespan = max((p.finish for p in placements), default=0.0)
    return Schedule(graph, n_processors, tuple(placements), makespan)
