"""Parallel task graphs and list scheduling.

Section 5.2 proposes concrete PDC assignments for Data Structures courses:
"consider the Parallel Task Graph model of parallel codes and as
assignments implement topological sorts to derive a feasible order of tasks
and compute metrics like critical path ... Implementing a list-scheduling
simulator would be a good application of priority queues and graphs."

This package implements exactly that content — it is both a substrate the
anchor recommender points at and a self-contained parallel-computing
library: DAG model with work/span analysis, topological sorting, critical
paths, a list-scheduling simulator over p processors with pluggable
priority policies, speedup/efficiency metrics, and the classic scaling
laws (Amdahl, Gustafson, Brent's bound).
"""

from repro.taskgraph.dag import (
    TaskGraph,
    divide_and_conquer_dag,
    fork_join_dag,
    layered_random_dag,
    pipeline_dag,
    reduction_tree_dag,
    wavefront_dag,
)
from repro.taskgraph.scheduling import (
    PRIORITY_POLICIES,
    Schedule,
    ScheduledTask,
    list_schedule,
)
from repro.taskgraph.laws import amdahl_speedup, brent_bound, gustafson_speedup
from repro.taskgraph.comm import list_schedule_comm, validate_comm_schedule

__all__ = [
    "TaskGraph",
    "divide_and_conquer_dag",
    "fork_join_dag",
    "layered_random_dag",
    "pipeline_dag",
    "reduction_tree_dag",
    "wavefront_dag",
    "Schedule",
    "ScheduledTask",
    "list_schedule",
    "PRIORITY_POLICIES",
    "amdahl_speedup",
    "brent_bound",
    "gustafson_speedup",
    "list_schedule_comm",
    "validate_comm_schedule",
]
