"""Flavor analysis within a course family (Figures 5 and 7, §4.4/§4.6).

The factorization of §4.4 is interpreted by reading the H matrix: which
knowledge areas and which tags carry each extracted type.  This module
packages that interpretation — per-type area mass, top tags, and per-course
type memberships — so benchmarks can print what the paper's figures show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.matrix import CourseMatrix
from repro.analysis.typing import CourseTyping, type_courses
from repro.ontology.queries import area_of
from repro.ontology.tree import GuidelineTree
from repro.runtime.metrics import metrics
from repro.util.rng import RngLike


@dataclass(frozen=True)
class TypeProfile:
    """Interpretation of one NNMF dimension.

    * ``area_mass`` — fraction of the type's H mass per knowledge area
      (the per-area annotations under Figures 5b/7b).
    * ``top_tags`` — the highest-weight tags, the things one reads off to
      say "Type 1 seems to contain primarily ... Big Oh notation,
      complexity analysis, trees ...".
    * ``member_courses`` — courses whose normalized W weight on this type
      exceeds the membership threshold.
    """

    index: int
    area_mass: dict[str, float]
    top_tags: tuple[tuple[str, float], ...]
    member_courses: tuple[tuple[str, float], ...]

    @property
    def dominant_area(self) -> str:
        return max(self.area_mass, key=lambda a: self.area_mass[a]) if self.area_mass else "?"

    def describe(self) -> str:
        """Human-readable one-liner for the type, in the paper's idiom.

        Heuristic naming from the area-mass profile: the signatures of
        §4.4/§4.6 (PL-heavy = object-oriented; AL-heavy = algorithmic;
        SDF-heavy with AR = imperative + representation; CN/GV/IM presence
        = applications; DS counting presence = combinatorial).
        """
        if not self.area_mass:
            return f"Type {self.index + 1}: (empty)"
        get = self.area_mass.get
        if self.dominant_area == "PL":
            flavor = "object-oriented programming"
        elif self.dominant_area == "AL" and get("DS", 0) > 0.1:
            flavor = "combinatorial algorithms"
        elif self.dominant_area == "AL":
            flavor = "algorithmic"
        elif self.dominant_area == "SDF" and get("AR", 0) > 0.04:
            flavor = "imperative programming + data representation"
        elif self.dominant_area == "SDF":
            flavor = "imperative programming"
        elif self.dominant_area == "PD":
            flavor = "parallel and distributed computing"
        elif self.dominant_area == "SE":
            flavor = "software engineering"
        else:
            flavor = f"{self.dominant_area}-centered"
        if get("CN", 0) + get("GV", 0) + get("IM", 0) > 0.08:
            flavor += ", applications-oriented"
        top = ", ".join(
            f"{a} {v:.0%}"
            for a, v in sorted(self.area_mass.items(), key=lambda x: -x[1])[:3]
        )
        return f"Type {self.index + 1}: {flavor} ({top})"


@dataclass(frozen=True)
class FlavorAnalysis:
    """Full flavor analysis of a course family."""

    typing: CourseTyping
    profiles: tuple[TypeProfile, ...]

    @property
    def k(self) -> int:
        return self.typing.k

    def course_memberships(self, course_id: str) -> np.ndarray:
        """Normalized type weights of one course (sums to 1)."""
        i = self.typing.matrix.course_ids.index(course_id)
        return self.typing.w_normalized[i]

    def strongest_course(self, type_index: int) -> str:
        """Course with the highest normalized weight on ``type_index``."""
        wn = self.typing.w_normalized
        return self.typing.matrix.course_ids[int(np.argmax(wn[:, type_index]))]


def analyze_flavors(
    matrix: CourseMatrix,
    tree: GuidelineTree,
    k: int = 3,
    *,
    seed: RngLike = None,
    solver: str = "hals",
    init: str = "random",
    n_restarts: int = 4,
    top_n: int = 15,
    membership_threshold: float = 0.25,
    workers: int | None = None,
) -> FlavorAnalysis:
    """Factor a family matrix and interpret each type.

    k=3 reproduces the paper's choice for both the CS1 and the DS+Algo
    analyses (k=2 under-separates, k=4 duplicates a dimension — verified by
    :mod:`~repro.analysis.model_selection`).
    """
    typing = type_courses(
        matrix, k, seed=seed, solver=solver, init=init,
        n_restarts=n_restarts, workers=workers,
    )
    return flavors_from_typing(
        typing, tree, top_n=top_n, membership_threshold=membership_threshold
    )


def flavors_from_typing(
    typing: CourseTyping,
    tree: GuidelineTree,
    *,
    top_n: int = 15,
    membership_threshold: float = 0.25,
) -> FlavorAnalysis:
    """Interpret an already-fit :class:`CourseTyping` (the H/W reading).

    The pure-interpretation half of :func:`analyze_flavors`, split out so
    the service's request broker can coalesce the NMF solves of many
    concurrent flavor requests and finish each one here.
    """
    matrix = typing.matrix
    metrics.inc("flavors.analyses")
    h, w_n = typing.h, typing.w_normalized
    profiles = []
    for t in range(typing.k):
        row = h[t]
        mass = float(row.sum())
        area_mass: dict[str, float] = {}
        for j, tag in enumerate(matrix.tag_ids):
            if row[j] <= 0 or tag not in tree:
                continue
            area = area_of(tree, tag)
            code = area.meta.get("code", area.short_id) if area else "?"
            area_mass[code] = area_mass.get(code, 0.0) + float(row[j])
        if mass > 0:
            area_mass = {a: v / mass for a, v in area_mass.items()}
        order = np.argsort(row)[::-1][:top_n]
        top_tags = tuple(
            (matrix.tag_ids[j], float(row[j])) for j in order if row[j] > 0
        )
        members = tuple(
            (cid, float(w_n[i, t]))
            for i, cid in enumerate(matrix.course_ids)
            if w_n[i, t] >= membership_threshold
        )
        profiles.append(
            TypeProfile(
                index=t,
                area_mass=area_mass,
                top_tags=top_tags,
                member_courses=members,
            )
        )
    return FlavorAnalysis(typing=typing, profiles=tuple(profiles))
