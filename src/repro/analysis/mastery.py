"""Student-expectation analysis: mastery and Bloom levels.

The introduction motivates understanding "what topics are being covered and
the level of student expectations."  CS2013 expresses expectations as
learning-outcome mastery (familiarity < usage < assessment); PDC12 uses
Bloom levels (know < comprehend < apply).  This module summarizes the
expectation profile of a course and compares profiles across course
families.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.materials.course import Course
from repro.ontology.node import Bloom, Mastery, NodeKind
from repro.ontology.tree import GuidelineTree

#: Ordinal ranks for averaging.
_MASTERY_RANK = {Mastery.FAMILIARITY: 1, Mastery.USAGE: 2, Mastery.ASSESSMENT: 3}
_BLOOM_RANK = {Bloom.KNOW: 1, Bloom.COMPREHEND: 2, Bloom.APPLY: 3}


@dataclass(frozen=True)
class ExpectationProfile:
    """Expectation summary of one course against one guideline."""

    course_id: str
    n_outcomes: int
    mastery_counts: dict[Mastery, int]
    bloom_counts: dict[Bloom, int]

    @property
    def mean_mastery(self) -> float:
        """Mean ordinal mastery (1 familiarity .. 3 assessment); 0 if none."""
        total = sum(self.mastery_counts.values())
        if not total:
            return 0.0
        return sum(_MASTERY_RANK[m] * c for m, c in self.mastery_counts.items()) / total

    @property
    def mean_bloom(self) -> float:
        """Mean ordinal Bloom level (1 know .. 3 apply); 0 if none."""
        total = sum(self.bloom_counts.values())
        if not total:
            return 0.0
        return sum(_BLOOM_RANK[b] * c for b, c in self.bloom_counts.items()) / total

    @property
    def assessment_share(self) -> float:
        """Fraction of covered outcomes at the assessment level."""
        total = sum(self.mastery_counts.values())
        return self.mastery_counts.get(Mastery.ASSESSMENT, 0) / total if total else 0.0


def expectation_profile(course: Course, tree: GuidelineTree) -> ExpectationProfile:
    """Summarize the mastery/Bloom levels of the tags a course covers."""
    mastery: Counter[Mastery] = Counter()
    bloom: Counter[Bloom] = Counter()
    n_outcomes = 0
    for tag in course.tag_set():
        node = tree.get(tag)
        if node is None or not node.is_tag:
            continue
        if node.kind is NodeKind.OUTCOME:
            n_outcomes += 1
            if node.mastery is not None:
                mastery[node.mastery] += 1
        if node.bloom is not None:
            bloom[node.bloom] += 1
    return ExpectationProfile(
        course_id=course.id,
        n_outcomes=n_outcomes,
        mastery_counts=dict(mastery),
        bloom_counts=dict(bloom),
    )


def compare_expectations(
    courses: Sequence[Course], tree: GuidelineTree
) -> dict[str, ExpectationProfile]:
    """Profiles for a whole family, keyed by course id."""
    return {c.id: expectation_profile(c, tree) for c in courses}
