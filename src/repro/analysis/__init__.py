"""The paper's analyses (Section 4).

* :mod:`~repro.analysis.matrix` — the course x curriculum-tag 0–1 matrix
  ``A`` (§4.1).
* :mod:`~repro.analysis.agreement` — tag-agreement distributions (Figure 3)
  and threshold agreement trees (Figures 4, 6, 8).
* :mod:`~repro.analysis.typing` — NNMF course typing over all courses
  (Figure 2) with type↔category association.
* :mod:`~repro.analysis.flavors` — NNMF flavor analysis within a course
  family (Figures 5 and 7), with H-matrix interpretation by knowledge area.
* :mod:`~repro.analysis.model_selection` — choosing ``k``: reconstruction
  curves, duplicate-dimension overfit detection (the paper's manual k=4
  finding), and cross-seed stability.
"""

from repro.analysis.matrix import CourseMatrix, build_course_matrix
from repro.analysis.agreement import (
    AgreementResult,
    agreement,
    agreement_counts,
    agreement_tree,
)
from repro.analysis.typing import (
    CourseTyping,
    type_courses,
    typing_from_bundles,
    typing_specs,
)
from repro.analysis.flavors import (
    FlavorAnalysis,
    TypeProfile,
    analyze_flavors,
    flavors_from_typing,
)
from repro.analysis.mastery import (
    ExpectationProfile,
    compare_expectations,
    expectation_profile,
)
from repro.analysis.dependencies import TopicDependencies, topic_dependencies
from repro.analysis.program import ProgramCoverage, analyze_program, pdc_gap
from repro.analysis.model_selection import (
    KSweepEntry,
    duplicate_dimension_score,
    k_sweep,
    select_k,
    singleton_dimension_score,
    stability_score,
)

__all__ = [
    "CourseMatrix",
    "build_course_matrix",
    "AgreementResult",
    "agreement",
    "agreement_counts",
    "agreement_tree",
    "CourseTyping",
    "type_courses",
    "typing_from_bundles",
    "typing_specs",
    "FlavorAnalysis",
    "TypeProfile",
    "analyze_flavors",
    "flavors_from_typing",
    "ExpectationProfile",
    "compare_expectations",
    "expectation_profile",
    "TopicDependencies",
    "topic_dependencies",
    "ProgramCoverage",
    "analyze_program",
    "pdc_gap",
    "KSweepEntry",
    "duplicate_dimension_score",
    "k_sweep",
    "select_k",
    "stability_score",
]
