"""Topic-dependency analysis of a course (workshop day 2, §3.2).

Attendees are taught "how to study the dependencies of topics in their
classes."  The observable signal is the course's material sequence: a tag
*depends on* an earlier-introduced tag when some material covers both —
the later topic is being taught on top of the earlier one.  The resulting
structure is a DAG (edges always point from strictly-earlier to later
introductions), so the :mod:`repro.taskgraph` machinery applies directly:
the critical path is the course's longest prerequisite chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.materials.course import Course
from repro.taskgraph.dag import TaskGraph


@dataclass(frozen=True)
class TopicDependencies:
    """Dependency structure extracted from one course."""

    course_id: str
    graph: TaskGraph               # vertices = tags, unit weights
    intro_position: dict[str, int]  # tag -> index of first covering material

    def longest_chain(self) -> list[str]:
        """The longest prerequisite chain (critical path of the DAG)."""
        return self.graph.critical_path()

    def chain_length(self) -> int:
        """Number of tags on the longest chain (0 for an empty course)."""
        return len(self.longest_chain())

    def foundational_tags(self, *, min_dependents: int = 3) -> list[str]:
        """Tags that at least ``min_dependents`` later topics build on."""
        counts = {t: len(self.graph.successors[t]) for t in self.graph.weights}
        return sorted(t for t, c in counts.items() if c >= min_dependents)

    def prerequisite_depth(self, tag: str) -> int:
        """Length of the longest dependency chain ending at ``tag`` (>= 1)."""
        return int(self.graph.critical_path_lengths()[tag])


def topic_dependencies(course: Course) -> TopicDependencies:
    """Extract the topic-dependency DAG of ``course``.

    Materials are taken in course order; the first material covering a tag
    *introduces* it.  For every material, each of its tags gains a
    dependency edge from every strictly-earlier-introduced tag in the same
    material (deduplicated).
    """
    intro: dict[str, int] = {}
    for pos, material in enumerate(course.materials):
        for tag in material.mappings:
            intro.setdefault(tag, pos)
    edges: set[tuple[str, str]] = set()
    for material in course.materials:
        tags = sorted(material.mappings)
        for t in tags:
            for s in tags:
                if intro[s] < intro[t]:
                    edges.add((s, t))
    weights = {t: 1.0 for t in intro}
    graph = TaskGraph.from_edges(weights, sorted(edges))
    return TopicDependencies(course.id, graph, intro)
