"""Choosing the number of types ``k`` (§4.4's manual inspection, made rigorous).

The paper inspected k ∈ {2, 3, 4} by hand: "k = 4 generated two dimensions
which were almost identical, indicating an overfit.  Using k = 2 seemed to
not separate the courses as well as k = 3."  Three quantitative proxies:

* :func:`duplicate_dimension_score` — maximum cosine similarity between two
  rows of H; near 1 flags the k=4 failure mode.
* reconstruction curves via :func:`k_sweep` — diminishing returns locate
  the useful rank.
* :func:`stability_score` — cross-seed agreement of the extracted types;
  overfit dimensions are unstable under re-initialization.

:func:`select_k` combines them into the paper's decision rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.matrix import CourseMatrix
from repro.factorization.nmf import nmf_restart_specs
from repro.runtime.executor import run_nmf_fits
from repro.runtime.metrics import metrics
from repro.util.rng import RngLike, as_rng

_EPS = np.finfo(np.float64).eps


def duplicate_dimension_score(h: np.ndarray) -> float:
    """Maximum pairwise cosine similarity between rows of ``H``.

    1.0 means two extracted types are colinear — the "almost identical
    dimensions" overfit signature.  Returns 0 for k=1.
    """
    h = np.asarray(h, dtype=float)
    k = h.shape[0]
    if k < 2:
        return 0.0
    norms = np.linalg.norm(h, axis=1)
    normed = h / np.maximum(norms[:, None], _EPS)
    sim = normed @ normed.T
    np.fill_diagonal(sim, -np.inf)
    return float(sim.max())


def singleton_dimension_score(w: np.ndarray, *, dominance: float = 0.95) -> float:
    """Fraction of dimensions that degenerate to a single course.

    A *type* should describe several courses; a W column whose mass is
    ``dominance``-concentrated on one course is modeling an individual
    course, not a type — the overfit mode this corpus exhibits at the
    paper's rejected k=4 (each CS1 course becomes its own dimension, the
    small-n analogue of the paper's "two dimensions almost identical").
    """
    w = np.asarray(w, dtype=float)
    if w.ndim != 2 or w.shape[1] == 0:
        raise ValueError(f"W must be 2-D with columns, got shape {w.shape}")
    col_sums = np.maximum(w.sum(axis=0), _EPS)
    dominant = (w.max(axis=0) / col_sums) > dominance
    return float(dominant.mean())


def _match_types(h_a: np.ndarray, h_b: np.ndarray) -> float:
    """Greedy best-match mean cosine between two type sets (order-free)."""
    na = h_a / np.maximum(np.linalg.norm(h_a, axis=1, keepdims=True), _EPS)
    nb = h_b / np.maximum(np.linalg.norm(h_b, axis=1, keepdims=True), _EPS)
    sim = na @ nb.T
    k = sim.shape[0]
    total = 0.0
    used_a: set[int] = set()
    used_b: set[int] = set()
    flat = sorted(
        ((float(sim[i, j]), i, j) for i in range(k) for j in range(k)),
        reverse=True,
    )
    for s, i, j in flat:
        if i in used_a or j in used_b:
            continue
        total += s
        used_a.add(i)
        used_b.add(j)
        if len(used_a) == k:
            break
    return total / k


def _stability_from_hs(hs: Sequence[np.ndarray]) -> float:
    """Mean pairwise matched-type similarity over a set of H matrices."""
    n = len(hs)
    scores = [
        _match_types(hs[i], hs[j]) for i in range(n) for j in range(i + 1, n)
    ]
    return float(np.mean(scores))


def stability_score(
    matrix: CourseMatrix,
    k: int,
    *,
    n_runs: int = 5,
    seed: RngLike = None,
    solver: str = "hals",
    workers: int | None = None,
) -> float:
    """Mean pairwise matched-type similarity across random restarts.

    1.0 = every restart finds the same types; low values flag ranks where
    the factorization is re-initialization-dependent.  The restarts fan
    out through :mod:`repro.runtime` (identical results for any
    ``workers``).
    """
    if n_runs < 2:
        raise ValueError("stability needs at least 2 runs")
    specs = nmf_restart_specs(
        matrix.matrix, k, seed=seed, solver=solver, init="random", n_restarts=n_runs
    )
    results = run_nmf_fits(matrix.matrix, specs, workers=workers)
    return _stability_from_hs([r["h"] for r in results])


@dataclass(frozen=True)
class KSweepEntry:
    """Diagnostics for one candidate ``k``."""

    k: int
    reconstruction_err: float
    duplicate_score: float
    singleton_score: float
    stability: float


def k_sweep(
    matrix: CourseMatrix,
    ks: Sequence[int],
    *,
    seed: RngLike = None,
    solver: str = "hals",
    stability_runs: int = 4,
    workers: int | None = None,
) -> list[KSweepEntry]:
    """Fit every ``k`` and collect all three diagnostics (ablation A1).

    The sweep is a single runtime batch: every fit — one diagnostic fit
    plus ``stability_runs`` stability fits per candidate ``k`` — has its
    initialization pre-drawn in the order the sequential loop would draw
    it, then all of them dispatch together through
    :func:`repro.runtime.run_nmf_fits`.  Results are bit-identical to the
    serial sweep while parallelism spans candidate ranks *and* restarts.
    """
    if stability_runs < 2:
        raise ValueError("stability needs at least 2 runs")
    rng = as_rng(seed)
    specs: list[dict] = []
    layout: list[tuple[int, int, slice]] = []
    for k in ks:
        main = len(specs)
        specs.extend(
            nmf_restart_specs(
                matrix.matrix, k, seed=rng, solver=solver, init="random",
                n_restarts=1,
            )
        )
        stab = slice(len(specs), len(specs) + stability_runs)
        specs.extend(
            nmf_restart_specs(
                matrix.matrix, k, seed=rng, solver=solver, init="random",
                n_restarts=stability_runs,
            )
        )
        layout.append((k, main, stab))
    with metrics.timer("model_selection.k_sweep"):
        results = run_nmf_fits(matrix.matrix, specs, workers=workers)
    out: list[KSweepEntry] = []
    for k, main, stab in layout:
        bundle = results[main]
        out.append(
            KSweepEntry(
                k=k,
                reconstruction_err=float(bundle["err"]),
                duplicate_score=duplicate_dimension_score(bundle["h"]),
                singleton_score=singleton_dimension_score(bundle["w"]),
                stability=_stability_from_hs([r["h"] for r in results[stab]]),
            )
        )
    return out


def select_k(
    entries: Sequence[KSweepEntry],
    *,
    duplicate_threshold: float = 0.8,
    singleton_threshold: float = 0.5,
) -> int:
    """The paper's decision rule, automated.

    Keep adding types until the factorization overfits, then back off.
    Overfit at ``k`` means either (a) two extracted types are near-identical
    in content (``duplicate_score >= duplicate_threshold``, the paper's
    observed k=4 failure) or (b) at least half the dimensions degenerate to
    single courses (``singleton_score >= singleton_threshold``, the small-n
    equivalent).  Returns the largest non-overfit ``k`` before the first
    overfit one.
    """
    if not entries:
        raise ValueError("need at least one sweep entry")
    ordered = sorted(entries, key=lambda e: e.k)
    best = ordered[0].k
    for e in ordered:
        if (
            e.duplicate_score < duplicate_threshold
            and e.singleton_score < singleton_threshold
        ):
            best = e.k
        else:
            break
    return best
