"""NNMF course typing over the whole corpus (Figure 2, §4.2).

"We computed a decomposition of all courses with k = 4 dimensions ...
Dimension 4 has a high intensity on courses which seems to be about data
structures.  Dimension 2 ... software engineering.  Dimension 3 ...
parallel computing.  Dimension 1 ... CS1."

This module fits the factorization and asks the paper's question
programmatically: does each name-based course category concentrate on its
own dimension?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.matrix import CourseMatrix
from repro.factorization.nmf import nmf_restart_specs
from repro.materials.course import Course, CourseLabel
from repro.runtime.executor import run_nmf_fits
from repro.util.rng import RngLike


@dataclass(frozen=True)
class CourseTyping:
    """Result of typing courses with NNMF.

    ``w`` is courses x k (the Figure 2 heat map); ``h`` is k x tags.
    ``w_normalized`` scales each row to unit sum so intensities compare
    across courses of different sizes.
    """

    matrix: CourseMatrix
    w: np.ndarray
    h: np.ndarray
    reconstruction_err: float

    @property
    def k(self) -> int:
        return self.w.shape[1]

    @property
    def w_normalized(self) -> np.ndarray:
        sums = self.w.sum(axis=1, keepdims=True)
        return np.where(sums > 0, self.w / np.maximum(sums, 1e-12), 0.0)

    def dominant_type(self, course_id: str) -> int:
        """Index (0-based) of the course's strongest dimension."""
        return int(np.argmax(self.w[self.matrix.course_ids.index(course_id)]))

    def top_tags_for_dim(self, dim: int, n: int = 10) -> list[tuple[str, float]]:
        """The highest-weight tags of one H row — what the dimension *is*.

        This is how the paper reads Figure 2's dimensions ("dimension 4
        ... seems to be about data structures"): by the guideline entries
        the row loads on.
        """
        if not 0 <= dim < self.k:
            raise ValueError(f"dim must be in [0, {self.k}), got {dim}")
        row = self.h[dim]
        order = np.argsort(row)[::-1][:n]
        return [
            (self.matrix.tag_ids[j], float(row[j])) for j in order if row[j] > 0
        ]

    def label_affinity(
        self, courses: Sequence[Course]
    ) -> dict[CourseLabel, np.ndarray]:
        """Mean normalized W row per course category.

        The Figure 2 reading — "dimension 3 has a high intensity in parallel
        computing courses" — corresponds to the PDC row of this table
        peaking at dimension 3.
        """
        by_id = {c.id: c for c in courses}
        wn = self.w_normalized
        out: dict[CourseLabel, np.ndarray] = {}
        for label in CourseLabel:
            rows = [
                i
                for i, cid in enumerate(self.matrix.course_ids)
                if cid in by_id and label in by_id[cid].labels
            ]
            if rows:
                out[label] = wn[rows].mean(axis=0)
        return out

    def label_to_type(self, courses: Sequence[Course]) -> dict[CourseLabel, int]:
        """Greedy one-to-one assignment of categories to dimensions.

        Categories are matched to their highest-affinity dimension in
        decreasing affinity order; each dimension is used at most once
        (mirroring the paper's reading that the four dimensions correspond
        to DS / SE / PDC / CS1).
        """
        affinity = self.label_affinity(courses)
        pairs = sorted(
            (
                (float(vec[d]), label, d)
                for label, vec in affinity.items()
                for d in range(self.k)
            ),
            key=lambda p: (-p[0], p[1].value, p[2]),
        )
        assigned: dict[CourseLabel, int] = {}
        used: set[int] = set()
        for score, label, d in pairs:
            if label in assigned or d in used or score <= 0:
                continue
            assigned[label] = d
            used.add(d)
        return assigned


def typing_specs(
    matrix: CourseMatrix,
    k: int = 4,
    *,
    seed: RngLike = None,
    solver: str = "hals",
    init: str = "random",
    n_restarts: int = 4,
) -> list[dict]:
    """The fully deterministic NMF specs behind :func:`type_courses`.

    Split out so a batching layer (the service's request broker) can
    gather specs from many concurrent requests, run them through
    :func:`repro.runtime.run_nmf_fits` in one call, and finish each
    request with :func:`typing_from_bundles` — same results, one kernel
    dispatch.
    """
    return nmf_restart_specs(
        matrix.matrix, k, seed=seed, solver=solver, init=init,
        n_restarts=n_restarts,
    )


def typing_from_bundles(
    matrix: CourseMatrix, bundles: Sequence[dict]
) -> CourseTyping:
    """Pick the lowest-reconstruction-error restart (first wins ties)."""
    best: CourseTyping | None = None
    for bundle in bundles:
        cand = CourseTyping(
            matrix=matrix,
            w=bundle["w"],
            h=bundle["h"],
            reconstruction_err=float(bundle["err"]),
        )
        if best is None or cand.reconstruction_err < best.reconstruction_err:
            best = cand
    assert best is not None
    return best


def type_courses(
    matrix: CourseMatrix,
    k: int = 4,
    *,
    seed: RngLike = None,
    solver: str = "hals",
    init: str = "random",
    n_restarts: int = 4,
    workers: int | None = None,
) -> CourseTyping:
    """Fit NNMF with ``k`` dimensions to a course matrix.

    Defaults mirror the paper's scikit-learn v1.3.0 setup: random
    initialization, HALS coordinate descent (sklearn's default ``"cd"``
    solver family), k=4 for the all-course analysis.  Random init is
    restarted ``n_restarts`` times and the lowest-reconstruction-error fit
    kept (deterministic inits run once).

    Restarts dispatch through :mod:`repro.runtime`: initializations are
    drawn up front from the shared generator (so results are bit-identical
    to the sequential loop for any ``workers``), solves fan out across
    processes, and repeated identical fits are served from the result
    cache.
    """
    specs = typing_specs(
        matrix, k, seed=seed, solver=solver, init=init, n_restarts=n_restarts
    )
    results = run_nmf_fits(matrix.matrix, specs, workers=workers)
    return typing_from_bundles(matrix, results)
