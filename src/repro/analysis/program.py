"""Program-level curriculum analysis.

CS2013's coverage rules apply to whole degree programs, not single courses:
a program must cover 100% of core-1 and at least 80% of core-2.  The
paper's premise is that programs under-cover the Parallel and Distributed
Computing area — this module rolls individual courses up into a program,
checks the core rules, and quantifies the *PDC gap*: the PD core entries no
course in the program touches (exactly the holes the anchor modules are
designed to fill).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.materials.course import Course
from repro.ontology.node import Tier
from repro.ontology.queries import area_of
from repro.ontology.tree import GuidelineTree


@dataclass(frozen=True)
class ProgramCoverage:
    """Aggregate coverage of a set of courses against one guideline."""

    course_ids: tuple[str, ...]
    covered: frozenset[str]
    core1_missing: tuple[str, ...]
    core2_missing: tuple[str, ...]
    by_area: dict[str, tuple[int, int]]   # area code -> (covered, total)

    @property
    def n_covered(self) -> int:
        return len(self.covered)

    def meets_core_requirements(self, *, core2_threshold: float = 0.8) -> bool:
        """CS2013's program rule: all of core-1, >= 80% of core-2."""
        if self.core1_missing:
            return False
        core2_total = self._core2_total
        if core2_total == 0:
            return True
        return 1.0 - len(self.core2_missing) / core2_total >= core2_threshold

    # populated by analyze_program via object.__setattr__ at construction
    _core1_total: int = 0
    _core2_total: int = 0

    @property
    def core1_coverage(self) -> float:
        if self._core1_total == 0:
            return 1.0
        return 1.0 - len(self.core1_missing) / self._core1_total

    @property
    def core2_coverage(self) -> float:
        if self._core2_total == 0:
            return 1.0
        return 1.0 - len(self.core2_missing) / self._core2_total


def analyze_program(
    courses: Sequence[Course], tree: GuidelineTree
) -> ProgramCoverage:
    """Roll ``courses`` up into one program-level coverage report."""
    if not courses:
        raise ValueError("a program needs at least one course")
    covered: set[str] = set()
    for c in courses:
        covered |= {t for t in c.tag_set() if t in tree}
    core1_missing: list[str] = []
    core2_missing: list[str] = []
    core1_total = core2_total = 0
    by_area: dict[str, tuple[int, int]] = {}
    for tag in tree.tags():
        area = area_of(tree, tag.id)
        code = area.meta.get("code", area.short_id) if area else "?"
        got = tag.id in covered
        c_a, t_a = by_area.get(code, (0, 0))
        by_area[code] = (c_a + got, t_a + 1)
        if tag.tier is Tier.CORE1:
            core1_total += 1
            if not got:
                core1_missing.append(tag.id)
        elif tag.tier is Tier.CORE2:
            core2_total += 1
            if not got:
                core2_missing.append(tag.id)
    report = ProgramCoverage(
        course_ids=tuple(c.id for c in courses),
        covered=frozenset(covered),
        core1_missing=tuple(sorted(core1_missing)),
        core2_missing=tuple(sorted(core2_missing)),
        by_area=by_area,
    )
    object.__setattr__(report, "_core1_total", core1_total)
    object.__setattr__(report, "_core2_total", core2_total)
    return report


def pdc_gap(
    courses: Sequence[Course],
    tree: GuidelineTree,
    *,
    area_code: str = "PD",
    core_only: bool = True,
) -> tuple[str, ...]:
    """PD-area guideline entries no course in the program covers.

    These are the insertion targets for PDC content — the quantified version
    of the paper's premise that early curricula leave PD under-taught.
    """
    prog = analyze_program(courses, tree)
    gap = []
    for tag in tree.tags():
        area = area_of(tree, tag.id)
        code = area.meta.get("code", area.short_id) if area else "?"
        if code != area_code:
            continue
        if core_only and tag.tier not in (Tier.CORE1, Tier.CORE2):
            continue
        if tag.id not in prog.covered:
            gap.append(tag.id)
    return tuple(sorted(gap))
