"""The course x curriculum matrix ``A`` (§4.1).

"We represent the courses as A, a 0-1 matrix where each row represents a
course in our analysis, and each column represents an entry in the
curriculum guideline."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.materials.course import Course, CourseLabel
from repro.ontology.tree import GuidelineTree


@dataclass(frozen=True)
class CourseMatrix:
    """``A`` plus its row/column identities.

    ``matrix[i, j] == 1`` iff course ``course_ids[i]`` covers tag
    ``tag_ids[j]``.  Rows keep roster order; columns are sorted tag ids.
    """

    matrix: np.ndarray
    course_ids: tuple[str, ...]
    tag_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.matrix.shape != (len(self.course_ids), len(self.tag_ids)):
            raise ValueError(
                f"matrix shape {self.matrix.shape} does not match "
                f"{len(self.course_ids)} courses x {len(self.tag_ids)} tags"
            )

    @property
    def n_courses(self) -> int:
        return len(self.course_ids)

    @property
    def n_tags(self) -> int:
        return len(self.tag_ids)

    def row(self, course_id: str) -> np.ndarray:
        """One course's 0–1 tag vector."""
        return self.matrix[self.course_ids.index(course_id)]

    def tag_counts(self) -> dict[str, int]:
        """Tag id → number of courses covering it (column sums)."""
        sums = self.matrix.sum(axis=0).astype(int)
        return {t: int(s) for t, s in zip(self.tag_ids, sums)}

    def subset(self, course_ids: Sequence[str]) -> "CourseMatrix":
        """Row subset (course order as given), dropping all-zero columns."""
        rows = [self.course_ids.index(cid) for cid in course_ids]
        sub = self.matrix[rows]
        keep = sub.sum(axis=0) > 0
        return CourseMatrix(
            sub[:, keep],
            tuple(course_ids),
            tuple(t for t, k in zip(self.tag_ids, keep) if k),
        )


def build_course_matrix(
    courses: Sequence[Course],
    *,
    tree: GuidelineTree | None = None,
    label: CourseLabel | None = None,
    full_universe: bool = False,
    weighting: str = "binary",
) -> CourseMatrix:
    """Build ``A`` from classified courses.

    ``label`` filters courses (e.g. only CS1 for Figure 5).  ``tree``
    restricts columns to that guideline's tags (a course mapped against
    both CS2013 and PDC12 contributes only in-tree tags).  With
    ``full_universe`` the columns are the whole tag universe of ``tree``;
    otherwise only tags covered by at least one selected course appear —
    the form the paper factorizes.

    ``weighting``: ``"binary"`` is the paper's 0–1 matrix; ``"tfidf"``
    down-weights ubiquitous tags by ``log((1 + n) / (1 + df)) + 1`` — the
    topic-modeling convention the paper's NLP analogy (§4.1) implies,
    ablated in ``bench_ablation_weighting.py``.
    """
    if weighting not in ("binary", "tfidf"):
        raise ValueError(f"unknown weighting {weighting!r}")
    selected = [c for c in courses if label is None or label in c.labels]
    if not selected:
        raise ValueError(f"no courses match label {label}")
    if full_universe:
        if tree is None:
            raise ValueError("full_universe requires a guideline tree")
        tag_ids: list[str] = list(tree.tag_ids())
    else:
        universe: set[str] = set()
        for c in selected:
            tags = c.tag_set()
            if tree is not None:
                tags = frozenset(t for t in tags if t in tree)
            universe |= tags
        tag_ids = sorted(universe)
    index = {t: j for j, t in enumerate(tag_ids)}
    a = np.zeros((len(selected), len(tag_ids)))
    for i, c in enumerate(selected):
        for t in c.tag_set():
            j = index.get(t)
            if j is not None:
                a[i, j] = 1.0
    if weighting == "tfidf":
        n = a.shape[0]
        df = a.sum(axis=0)
        idf = np.log((1.0 + n) / (1.0 + df)) + 1.0
        a = a * idf[None, :]
    return CourseMatrix(a, tuple(c.id for c in selected), tuple(tag_ids))
