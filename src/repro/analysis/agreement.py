"""Tag-agreement analysis (Figures 3, 4, 6, 8).

For a family of same-named courses, count how many courses each tag appears
in.  Figure 3 plots the tags (sorted by decreasing count) against those
counts; Figures 4/6/8 show the guideline subtree induced by tags above an
agreement threshold.

The Threats-to-Validity section notes the raw metric ignores coverage
depth; ``weighted=True`` switches to material-count weighting (a course
with five materials on a tag counts more than one with a single material),
the simplest depth-aware variant.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.materials.course import Course
from repro.ontology.queries import agreement_subtree, area_histogram
from repro.ontology.tree import GuidelineTree


def agreement_counts(
    courses: Sequence[Course],
    *,
    tree: GuidelineTree | None = None,
    weighted: bool = False,
) -> Counter[str]:
    """Tag id → number of courses covering it (or summed material weight)."""
    counts: Counter[str] = Counter()
    for c in courses:
        if weighted:
            for tag, n in c.tag_counts().items():
                if tree is None or tag in tree:
                    counts[tag] += n
        else:
            for tag in c.tag_set():
                if tree is None or tag in tree:
                    counts[tag] += 1
    return counts


@dataclass(frozen=True)
class AgreementResult:
    """Agreement summary for one course family.

    ``distribution`` is the Figure-3 series: course-counts sorted in
    decreasing order, one entry per distinct tag.  ``at_least[k]`` is the
    number of tags appearing in ≥ k courses.
    """

    n_courses: int
    counts: Counter[str]
    distribution: tuple[int, ...]
    at_least: dict[int, int]

    @property
    def n_tags(self) -> int:
        return len(self.counts)

    def tags_at_least(self, threshold: int) -> list[str]:
        """Tag ids appearing in at least ``threshold`` courses (sorted)."""
        return sorted(t for t, v in self.counts.items() if v >= threshold)

    def areas_at_least(
        self, threshold: int, tree: GuidelineTree
    ) -> Counter[str]:
        """Knowledge-area histogram of the ≥ threshold tags."""
        return area_histogram(tree, self.tags_at_least(threshold))


def agreement(
    courses: Sequence[Course],
    *,
    tree: GuidelineTree | None = None,
    weighted: bool = False,
) -> AgreementResult:
    """Compute the full agreement summary (Figure 3 data)."""
    if not courses:
        raise ValueError("need at least one course")
    counts = agreement_counts(courses, tree=tree, weighted=weighted)
    dist = tuple(sorted(counts.values(), reverse=True))
    max_k = len(courses) if not weighted else (max(counts.values()) if counts else 0)
    at_least = {
        k: sum(1 for v in counts.values() if v >= k) for k in range(1, max_k + 1)
    }
    return AgreementResult(
        n_courses=len(courses),
        counts=counts,
        distribution=dist,
        at_least=at_least,
    )


def agreement_tree(
    courses: Sequence[Course],
    tree: GuidelineTree,
    threshold: int,
    *,
    weighted: bool = False,
) -> GuidelineTree:
    """The Figure 4/6/8 tree: guideline subtree of tags in ≥ threshold courses."""
    counts = agreement_counts(courses, tree=tree, weighted=weighted)
    return agreement_subtree(tree, counts, threshold)
