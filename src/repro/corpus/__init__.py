"""Synthetic course corpus calibrated to the paper's findings.

The paper's raw data — 20 instructor-classified courses — was never
published.  This package generates a statistically faithful substitute:

* :mod:`~repro.corpus.archetypes` — course *archetypes* (CS1 imperative /
  OOP / algorithmic; DS applications / OOP / combinatorial; Algorithms;
  SE; PDC; OOP; CS2; networking) expressed as per-knowledge-unit inclusion
  probabilities over the CS2013 tree, engineered from §4.3–4.7.
* :mod:`~repro.corpus.roster` — the Figure 1 roster of 20 retained courses,
  each assigned an archetype mixture matching the paper's per-course
  observations (e.g. UCF/Ahmed hits all three DS types evenly).
* :mod:`~repro.corpus.generator` — stochastic tag sampling plus material
  synthesis, so every generated course is a full CS-Materials-style course.

Calibration targets (checked by tests and reported in EXPERIMENTS.md):
CS1 — 200+ distinct tags, ≈50 shared by ≥2 courses, ≈25 by ≥3, ≈13 by ≥4
with the ≥4 set inside SDF; DS — ≈250 distinct tags, ≈120 shared by ≥2,
≈50 by ≥4; DS agreement higher than CS1.
"""

from repro.corpus.archetypes import Archetype, ARCHETYPES
from repro.corpus.roster import EXCLUDED_ROSTER, ROSTER, RosterEntry
from repro.corpus.generator import (
    CorpusConfig,
    expected_tag_probability,
    generate_corpus,
    generate_course,
    sample_course_tags,
    sample_pdc12_tags,
    synthetic_roster,
)
from repro.corpus.ingest import ingest_courses, load_courses_tolerant
from repro.corpus.stream import (
    StreamIngestReport,
    generate_stream,
    ingest_stream,
    iter_course_records,
    load_courses_jsonl,
    save_courses_jsonl,
)
from repro.materials.ingest import ExcludedRecord, IngestReport

__all__ = [
    "Archetype",
    "ARCHETYPES",
    "ROSTER",
    "EXCLUDED_ROSTER",
    "RosterEntry",
    "CorpusConfig",
    "ExcludedRecord",
    "IngestReport",
    "ingest_courses",
    "load_courses_tolerant",
    "StreamIngestReport",
    "generate_stream",
    "ingest_stream",
    "iter_course_records",
    "load_courses_jsonl",
    "save_courses_jsonl",
    "expected_tag_probability",
    "generate_corpus",
    "generate_course",
    "sample_course_tags",
    "sample_pdc12_tags",
    "synthetic_roster",
]
