"""The course roster of Figure 1, with archetype mixtures per course.

Twenty retained courses, in the paper's table order, each annotated with the
name-based category flags from Figure 1 and an archetype mixture encoding
what the paper reports about that specific course:

* §4.4 — Kerney and Kurdia are "mostly imperative programming"; Bourke and
  Toups are "a blend of imperative programming and algorithms"; Ahmed's is
  "purely a data structure and algorithm class"; Singh's is "an object
  oriented programming class ... taught in Java, while the others are
  taught in C and Python".
* §4.6 — Wahl, Wagner, and UNCC 2215 map to the combinatorial type; Duke
  maps "firmly" to the OOP type; the two UNCC 2214 sections map mostly to
  the applications type; "UCF's course seems to hit all three types evenly".

The 11 excluded courses (31 classified − 20 retained, §3.2) are modeled in
``EXCLUDED_ROSTER`` with per-course technical exclusion reasons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.materials.course import CourseLabel


@dataclass(frozen=True)
class RosterEntry:
    """One course of the workshop-collected dataset."""

    id: str
    institution: str
    code: str
    instructor: str
    name: str
    labels: frozenset[CourseLabel]
    mixture: Mapping[str, float]     # archetype name -> weight, sums to 1
    language: str = ""
    excluded_reason: str = ""        # non-empty only for excluded entries

    def __post_init__(self) -> None:
        total = sum(self.mixture.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.id}: mixture weights must sum to 1, got {total}")
        if any(w < 0 for w in self.mixture.values()):
            raise ValueError(f"{self.id}: mixture weights must be non-negative")

    @property
    def display_name(self) -> str:
        return f"{self.institution} {self.code} {self.instructor} {self.name}".strip()


def _labels(*ls: CourseLabel) -> frozenset[CourseLabel]:
    return frozenset(ls)


L = CourseLabel

#: The 20 retained courses, in Figure 1 order.
ROSTER: tuple[RosterEntry, ...] = (
    RosterEntry(
        "uncc-2214-krs", "UNCC", "ITCS 2214", "KRS", "Data Structures and Algorithms",
        _labels(L.DS), {"ds-applications": 1.0}, language="Java",
    ),
    RosterEntry(
        "uncc-2214-saule", "UNCC", "ITCS 2214", "Saule", "Data Structures and Algorithms",
        _labels(L.DS),
        {"ds-applications": 0.8, "ds-object-oriented": 0.1, "ds-combinatorial": 0.1},
        language="Java",
    ),
    RosterEntry(
        "uncc-3145-saule", "UNCC", "ITCS 3145", "Saule", "Parallel and Distributed Computing",
        _labels(L.PDC), {"pdc": 1.0}, language="C",
    ),
    RosterEntry(
        "uncc-3112-krs", "UNCC", "ITCS 3112", "KRS", "Object Oriented Programming",
        _labels(L.OOP), {"oop-course": 1.0}, language="Java",
    ),
    RosterEntry(
        "ccc-40-kerney", "CCC", "CSCI 40", "Kerney", "CS1",
        _labels(L.CS1), {"cs1-imperative": 1.0}, language="Python",
    ),
    RosterEntry(
        "hanover-225-wahl", "Hanover", "cs225", "Wahl", "Algorithmic Analysis 2021",
        _labels(L.ALGO), {"ds-combinatorial": 1.0}, language="Python",
    ),
    RosterEntry(
        "vcu-256-duke", "VCU", "CMSC 256", "Duke", "Data Structures and Object-oriented Programming",
        _labels(L.OOP, L.DS), {"ds-object-oriented": 1.0}, language="Java",
    ),
    RosterEntry(
        "ccc-41-kerney", "CCC", "CSCI 41", "Kerney", "CS2",
        frozenset(), {"cs2": 1.0}, language="Python",
    ),
    RosterEntry(
        "bsc-210-wagner", "BSC", "CAC 210", "Wagner", "Data Structures and Algorithms",
        _labels(L.DS), {"ds-combinatorial": 0.85, "ds-applications": 0.15}, language="Python",
    ),
    RosterEntry(
        "uncc-2215-krs", "UNCC", "ITCS 2215", "KRS", "Algorithms",
        _labels(L.ALGO), {"ds-combinatorial": 1.0}, language="C",
    ),
    RosterEntry(
        "gsu-4350-levine", "GSU", "CSC4350", "Levine", "Software Engineering",
        _labels(L.SOFTENG), {"software-engineering": 1.0}, language="Java",
    ),
    RosterEntry(
        "tulane-1100-kurdia", "Tulane", "CMPS1100", "Kurdia", "Intro to Programming",
        _labels(L.CS1), {"cs1-imperative": 1.0}, language="Python",
    ),
    RosterEntry(
        "knox-309-bunde", "Knox", "CS309", "Bunde", "Parallel Computing",
        _labels(L.PDC), {"pdc": 1.0}, language="C",
    ),
    RosterEntry(
        "lsu-1350-kundu", "LSU", "CSC 1350", "Kundu", "Parallel Computation",
        _labels(L.PDC), {"pdc": 0.7, "cs1-imperative": 0.3}, language="Java",
    ),
    RosterEntry(
        "ucf-3502-ahmed", "UCF", "COP3502", "Ahmed",
        "Computer Science 1 (CS1) Data structure and algorithm",
        _labels(L.CS1, L.DS),
        {
            "cs1-algorithmic": 0.46,
            "ds-applications": 0.18,
            "ds-object-oriented": 0.18,
            "ds-combinatorial": 0.18,
        },
        language="C",
    ),
    RosterEntry(
        "washu-131-singh", "WashU", "CSE131", "Singh", "Computer Science 1",
        _labels(L.CS1), {"cs1-oop": 1.0}, language="Java",
    ),
    RosterEntry(
        "unl-155e-bourke", "UNL", "CSCE 155E", "Bourke", "Computer Science I using C",
        _labels(L.CS1), {"cs1-imperative": 0.55, "cs1-algorithmic": 0.45}, language="C",
    ),
    RosterEntry(
        "uncc-4155-payton", "UNCC", "ITCS 4155", "Payton", "Software Development Projects",
        _labels(L.SOFTENG), {"software-engineering": 1.0}, language="JavaScript",
    ),
    RosterEntry(
        "tulane-1500-toups", "Tulane", "CMPS1500", "Toups", "CS1",
        _labels(L.CS1), {"cs1-algorithmic": 0.62, "cs1-imperative": 0.38}, language="Python",
    ),
    RosterEntry(
        "utsa-bopana", "UTSA", "", "Bopana", "Computer Network",
        frozenset(), {"networking": 1.0}, language="Python",
    ),
)

#: The 11 courses classified at workshops but excluded "for technical
#: reasons" (§3.2).  Archetypes are plausible; reasons model the kinds of
#: data problems a classification workshop produces.
EXCLUDED_ROSTER: tuple[RosterEntry, ...] = (
    RosterEntry("ex-01", "State U", "CS 101", "Adams", "Intro to CS",
                _labels(L.CS1), {"cs1-imperative": 1.0},
                excluded_reason="classification left incomplete at end of workshop"),
    RosterEntry("ex-02", "State U", "CS 201", "Baker", "Data Structures",
                _labels(L.DS), {"ds-object-oriented": 1.0},
                excluded_reason="materials uploaded without curriculum mappings"),
    RosterEntry("ex-03", "Tech College", "CSC 110", "Chen", "Programming I",
                _labels(L.CS1), {"cs1-oop": 1.0},
                excluded_reason="classified against a deprecated guideline snapshot"),
    RosterEntry("ex-04", "Tech College", "CSC 240", "Dorsey", "Algorithms",
                _labels(L.ALGO), {"ds-combinatorial": 1.0},
                excluded_reason="duplicate of another instructor's entry"),
    RosterEntry("ex-05", "Liberal Arts C", "CS 150", "Evans", "Computing Concepts",
                frozenset(), {"cs2": 1.0},
                excluded_reason="course withdrawn by instructor"),
    RosterEntry("ex-06", "Liberal Arts C", "CS 310", "Flores", "Operating Systems",
                frozenset(), {"networking": 0.5, "pdc": 0.5},
                excluded_reason="export failure corrupted material list"),
    RosterEntry("ex-07", "Metro U", "CMPS 2430", "Garcia", "Software Design",
                _labels(L.SOFTENG), {"software-engineering": 1.0},
                excluded_reason="fewer than five materials classified"),
    RosterEntry("ex-08", "Metro U", "CMPS 1400", "Huang", "Intro Programming",
                _labels(L.CS1), {"cs1-imperative": 0.6, "cs1-algorithmic": 0.4},
                excluded_reason="classification left incomplete at end of workshop"),
    RosterEntry("ex-09", "Coastal U", "CS 2200", "Iqbal", "Data Structures Lab",
                _labels(L.DS), {"ds-applications": 1.0},
                excluded_reason="lab-only shell course, no standalone content"),
    RosterEntry("ex-10", "Coastal U", "CS 4800", "Jones", "HPC Seminar",
                _labels(L.PDC), {"pdc": 1.0},
                excluded_reason="seminar format could not be mapped to materials"),
    RosterEntry("ex-11", "Mountain C", "CSCI 2210", "Kim", "Object Oriented Design",
                _labels(L.OOP), {"oop-course": 1.0},
                excluded_reason="account deleted before data validation"),
)
