"""Course archetypes: per-knowledge-unit tag-inclusion probabilities.

An archetype is the generative analogue of an NNMF *type*: a distribution
over the CS2013 guideline saying how likely a course of that flavor is to
cover tags in each knowledge unit.  The numbers below are engineered from
the paper's qualitative findings:

* §4.4 — CS1 Type 1 (algorithmic) leans on AL + SDF data structures +
  DS trees/graphs; Type 2 (imperative) on SDF programming + AR data
  representation + testing/correctness (SE, IAS); Type 3 (OOP) on PL/SDF
  with "almost no algorithm content".
* §4.6 — DS Type 1 adds problem-solving/datasets/APIs/visualization (CN,
  GV, IM); Type 2 adds OOP (PL, SDF); Type 3 adds combinatorial algorithms
  (AL strategies, DS counting/sets).
* §4.7 — PDC courses sit mostly in PD plus DS/AL/SF/SDF/PL spillover
  (digraphs, recursion/divide-and-conquer, Big-Oh).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

#: Unit keys are "<AREA>/<UNIT>" codes from the CS2013 data modules.
UnitWeights = Mapping[str, float]


@dataclass(frozen=True)
class Archetype:
    """A course flavor as unit-inclusion probabilities.

    ``unit_weights[u]`` is the probability scale that a tag under unit ``u``
    is covered by a course of this archetype (further modulated by tag tier
    and instructor idiosyncrasy in the generator).  Units absent from the
    mapping default to 0.  ``outcome_bias`` scales the inclusion of
    learning-outcome tags relative to topic tags — the "tree structure
    bias" dial from the paper's Threats to Validity.
    """

    name: str
    unit_weights: UnitWeights = field(default_factory=dict)
    outcome_bias: float = 1.0
    #: Multiplier on the generator's ``instructor_sigma`` for courses of
    #: this flavor.  >1 = idiosyncratic (CS1, where the paper found deep
    #: disagreement); <1 = standardized (DS, where agreement is high).
    dispersion: float = 1.0
    #: Optional inclusion probabilities over PDC12 units ("AREA/UNIT" codes
    #: of that guideline) — CS Materials classifies against both guidelines
    #: (§3.1), and PDC courses map to PDC12 as well as CS2013.
    pdc12_unit_weights: UnitWeights = field(default_factory=dict)

    def __post_init__(self) -> None:
        for unit, w in self.unit_weights.items():
            if not 0.0 <= w <= 1.0:
                raise ValueError(f"{self.name}: weight for {unit} must be in [0,1], got {w}")
        if self.outcome_bias < 0:
            raise ValueError("outcome_bias must be >= 0")
        if self.dispersion <= 0:
            raise ValueError("dispersion must be > 0")
        for unit, w in self.pdc12_unit_weights.items():
            if not 0.0 <= w <= 1.0:
                raise ValueError(
                    f"{self.name}: PDC12 weight for {unit} must be in [0,1], got {w}"
                )

    def weight(self, unit_key: str) -> float:
        return float(self.unit_weights.get(unit_key, 0.0))

    def pdc12_weight(self, unit_key: str) -> float:
        return float(self.pdc12_unit_weights.get(unit_key, 0.0))


#: Core units every flavor of a Data Structures course covers (§4.5: high
#: agreement on Big-Oh, linear structures, trees/graphs, search/sort).
_DS_CORE: dict[str, float] = {
    "AL/BA": 0.95,
    "AL/FDSA": 0.95,
    "SDF/FDS": 0.92,
    "DS/GT": 0.80,
    "SDF/AD": 0.55,
    "AL/AS": 0.55,
    "SDF/FPC": 0.30,
    "SDF/DM": 0.30,
}

CS1_IMPERATIVE = Archetype(
    "cs1-imperative",
    {
        "SDF/FPC": 0.80,  # the only unit CS1 courses broadly agree on (§4.3)
        "SDF/AD": 0.35,
        "SDF/DM": 0.40,
        "AR/MRD": 0.45,   # in-memory representation: the Type-2 marker (§5.2)
        "IAS/DEF": 0.30,  # correctness of programs and testing
        "SE/VV": 0.20,
        "SDF/FDS": 0.20,
        "IM/IMC": 0.15,
        "PL/BTS": 0.15,
        "AR/ALMO": 0.10,
    },
    dispersion=1.25,
)

CS1_OOP = Archetype(
    "cs1-oop",
    {
        "PL/OOP": 0.95,
        "SDF/FPC": 0.60,
        "PL/BTS": 0.55,
        "SDF/AD": 0.25,
        "SDF/DM": 0.30,
        "PL/EDR": 0.35,
        "SE/DES": 0.35,
        "HCI/DI": 0.10,
        "SDF/FDS": 0.15,
        "PL/LTE": 0.25,
        "PL/FP": 0.15,
        "AL/BA": 0.04,    # "almost no algorithm content" (§4.4)
    },
    dispersion=1.25,
)

CS1_ALGORITHMIC = Archetype(
    "cs1-algorithmic",
    {
        "AL/BA": 0.60,
        "AL/FDSA": 0.55,
        "AL/AS": 0.35,
        "SDF/FDS": 0.55,
        "SDF/FPC": 0.45,
        "SDF/AD": 0.40,
        "DS/GT": 0.35,
        "DS/SRF": 0.20,
        "SDF/DM": 0.15,
    },
    dispersion=1.25,
)

DS_APPLICATIONS = Archetype(
    "ds-applications",
    {
        **_DS_CORE,
        "CN/DATA": 0.70,  # datasets, APIs, visualization (§4.6 Type 1)
        "CN/PROC": 0.50,
        "GV/VIS": 0.50,
        "CN/IMS": 0.45,
        "IM/IMC": 0.35,
        "GV/FC": 0.30,
    },
    dispersion=0.7,
)

DS_OBJECT_ORIENTED = Archetype(
    "ds-object-oriented",
    {
        **_DS_CORE,
        "PL/OOP": 0.95,
        "PL/BTS": 0.60,
        "SE/DES": 0.50,
        "SDF/DM": 0.40,
        "PL/LTE": 0.30,
    },
    dispersion=0.7,
)

DS_COMBINATORIAL = Archetype(
    "ds-combinatorial",
    {
        **_DS_CORE,
        "AL/AS": 0.92,    # greedy, DP, backtracking (§4.6 Type 3)
        "DS/BC": 0.75,    # counting and enumerating
        "DS/SRF": 0.55,
        "AL/ACC": 0.50,
        "DS/PT": 0.40,
        "AL/ADV": 0.30,
        "DS/DP": 0.30,
    },
    dispersion=0.7,
)

SOFTWARE_ENGINEERING = Archetype(
    "software-engineering",
    {
        "SE/SPROC": 0.90,
        "SE/SPM": 0.90,
        "SE/TE": 0.85,
        "SE/REQ": 0.90,
        "SE/DES": 0.90,
        "SE/CONSTR": 0.75,
        "SE/VV": 0.90,
        "SE/EVO": 0.65,
        "SDF/DM": 0.40,
        "HCI/FOUND": 0.40,
        "HCI/DI": 0.40,
        "IAS/PSD": 0.35,
        "PL/EDR": 0.30,
        "PBD/WEB": 0.45,
        "PBD/INTRO": 0.30,
        "SP/PE": 0.35,
        "SP/SC": 0.25,
        "SP/IP": 0.25,
        "IM/DBS": 0.30,
    },
    dispersion=0.75,
)

PDC = Archetype(
    "pdc",
    {
        "PD/PF": 0.90,
        "PD/PDCMP": 0.85,
        "PD/CC": 0.85,
        "PD/PAAP": 0.80,
        "PD/PARCH": 0.80,
        "PD/PPERF": 0.50,
        "PD/DIST": 0.35,
        "PD/CLOUD": 0.30,
        "SF/PAR": 0.60,
        "SF/EVAL": 0.40,
        "AR/MANA": 0.50,
        "AR/MSO": 0.40,
        "OS/CON": 0.50,
        "DS/GT": 0.35,    # directed graphs as a model of computation (§4.7)
        "AL/BA": 0.40,    # Big-Oh for parallel algorithm analysis (§4.7)
        "SDF/AD": 0.25,   # recursion and divide-and-conquer (§4.7)
        "AL/AS": 0.30,
        "PL/CP": 0.30,
    },
    pdc12_unit_weights={
        "ARCH/CLASSES": 0.60,
        "ARCH/MEMHIER": 0.40,
        "ARCH/PERFMETRICS": 0.40,
        "PROG/PARADIGMS": 0.80,
        "PROG/SEMANTICS": 0.70,
        "PROG/PERF": 0.60,
        "ALGO/MODELS": 0.60,
        "ALGO/PARADIGMS": 0.70,
        "ALGO/PROBLEMS": 0.50,
        "XCUT/THEMES": 0.70,
        "XCUT/CONCEPTS": 0.50,
    },
)

OOP_COURSE = Archetype(
    "oop-course",
    {
        "PL/OOP": 0.95,
        "SE/DES": 0.60,
        "PL/BTS": 0.60,
        "PL/EDR": 0.40,
        "SDF/DM": 0.40,
        "HCI/DI": 0.25,
        "PL/LTE": 0.30,
        "SDF/FPC": 0.30,
        "PL/FP": 0.20,
    },
)

CS2 = Archetype(
    "cs2",
    {
        "SDF/FDS": 0.80,
        "AL/FDSA": 0.60,
        "AL/BA": 0.50,
        "PL/OOP": 0.50,
        "SDF/FPC": 0.50,
        "SDF/DM": 0.40,
        "DS/GT": 0.30,
        "SDF/AD": 0.40,
        "PL/BTS": 0.25,
    },
)

NETWORKING = Archetype(
    "networking",
    {
        "NC/INTRO": 0.90,
        "NC/NAPP": 0.85,
        "NC/RDD": 0.70,
        "NC/RF": 0.70,
        "OS/OV": 0.30,
        "IAS/NSEC": 0.40,
        "IAS/CRYPTO": 0.25,
        "SF/CPAR": 0.20,
        "PD/DIST": 0.30,
    },
)

#: Registry of all archetypes by name.
ARCHETYPES: dict[str, Archetype] = {
    a.name: a
    for a in (
        CS1_IMPERATIVE,
        CS1_OOP,
        CS1_ALGORITHMIC,
        DS_APPLICATIONS,
        DS_OBJECT_ORIENTED,
        DS_COMBINATORIAL,
        SOFTWARE_ENGINEERING,
        PDC,
        OOP_COURSE,
        CS2,
        NETWORKING,
    )
}
