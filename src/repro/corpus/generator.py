"""Stochastic course generation.

Pipeline per course: archetype mixture → per-unit inclusion probabilities →
per-tag Bernoulli draws (modulated by tier, outcome bias, and instructor
idiosyncrasy) → synthesized materials (lectures / assignments / labs /
exams) that collectively carry exactly the sampled tag set.

Determinism: every course derives its own child RNG from (seed, course id),
so adding or removing one course never perturbs the others — the same
property that makes parallel corpus generation agree with sequential.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.corpus.archetypes import ARCHETYPES, Archetype
from repro.corpus.roster import ROSTER, RosterEntry
from repro.materials.course import Course
from repro.materials.material import Material, MaterialType
from repro.ontology.node import NodeKind, Tier
from repro.ontology.tree import GuidelineTree
from repro.util.rng import RngLike, as_rng


@dataclass(frozen=True)
class CorpusConfig:
    """Tunable knobs of the generative model.

    Defaults are calibrated so the Figure-3 agreement shapes emerge (see
    EXPERIMENTS.md); tests pin the resulting bands.

    * ``tier_keep`` — how much likelier core guideline entries are to be
      covered than electives (depth-of-coverage proxy; §5.3 notes coverage
      depth is otherwise unmodeled).
    * ``outcome_keep`` — baseline propensity to classify against learning
      outcomes in addition to topics (the tree-structure bias dial).
    * ``instructor_sigma`` — lognormal spread of per-course unit emphasis;
      this is what makes two same-archetype courses disagree.
    * ``noise_rate`` — per-tag probability of an idiosyncratic, off-profile
      classification (every real course has a few).
    """

    tier_keep: Mapping[Tier, float] = field(
        default_factory=lambda: {Tier.CORE1: 1.0, Tier.CORE2: 0.60, Tier.ELECTIVE: 0.30}
    )
    outcome_keep: float = 0.70
    outcome_sigma: float = 0.35
    instructor_sigma: float = 0.55
    noise_rate: float = 0.025
    module_size: int = 6          # tags per synthesized course module
    exam_count: int = 2
    exam_fraction: float = 0.25   # fraction of course tags each exam samples
    assignment_fraction: float = 0.7

    def __post_init__(self) -> None:
        if not 0 <= self.noise_rate <= 1:
            raise ValueError("noise_rate must be in [0,1]")
        if self.module_size < 1:
            raise ValueError("module_size must be >= 1")


DEFAULT_CONFIG = CorpusConfig()


def _unit_key(tree: GuidelineTree, tag_id: str) -> str:
    """"AREA/UNIT" key of the unit containing ``tag_id``.

    Tags sit directly under units in both guideline trees; ids look like
    ``CS2013/SDF/FPC/t-...`` so the key is the two components before the
    leaf.
    """
    parts = tag_id.split("/")
    if len(parts) < 3:
        raise ValueError(f"tag id {tag_id!r} too shallow to carry an area/unit")
    return f"{parts[-3]}/{parts[-2]}"


def _mixture_archetype(mixture: Mapping[str, float]) -> list[tuple[Archetype, float]]:
    out = []
    for name, weight in mixture.items():
        if name not in ARCHETYPES:
            raise KeyError(f"unknown archetype {name!r}")
        out.append((ARCHETYPES[name], float(weight)))
    return out


def sample_course_tags(
    tree: GuidelineTree,
    mixture: Mapping[str, float],
    *,
    seed: RngLike = None,
    config: CorpusConfig = DEFAULT_CONFIG,
) -> frozenset[str]:
    """Draw the curriculum tag set of one course.

    The inclusion probability of tag ``t`` under unit ``u`` is::

        p(t) = jitter_u * sum_a mixture[a] * archetype_a[u]   (unit emphasis)
               * tier_keep[tier(t)]                           (depth proxy)
               * outcome_factor (outcomes only)               (tree bias)

    plus an additive ``noise_rate`` floor for idiosyncratic picks.
    """
    rng = as_rng(seed)
    archetypes = _mixture_archetype(mixture)
    # Per-course jitter of unit emphasis and outcome propensity.  The
    # jitter scale blends per-archetype dispersion: CS1 flavors are more
    # idiosyncratic than DS flavors (§4.3 vs §4.5).
    outcome_factor = config.outcome_keep * float(
        np.clip(rng.normal(1.0, config.outcome_sigma), 0.2, 1.8)
    )
    sigma = config.instructor_sigma * sum(a.dispersion * w for a, w in archetypes)
    unit_jitter: dict[str, float] = {}
    chosen: set[str] = set()
    for node in tree.tags():
        unit = _unit_key(tree, node.id)
        base = sum(w * a.weight(unit) for a, w in archetypes)
        if base > 0:
            if unit not in unit_jitter:
                unit_jitter[unit] = float(np.exp(rng.normal(0.0, sigma)))
            base *= unit_jitter[unit]
        tier = node.tier if node.tier is not None else Tier.CORE2
        p = base * config.tier_keep.get(tier, 0.5)
        if node.kind is NodeKind.OUTCOME:
            p *= outcome_factor * sum(
                a.outcome_bias * w for a, w in archetypes
            )
        p = min(p, 1.0)
        p = p + (1.0 - p) * config.noise_rate
        if rng.random() < p:
            chosen.add(node.id)
    return frozenset(chosen)


def expected_tag_probability(
    tree: GuidelineTree,
    tag_id: str,
    mixture: Mapping[str, float],
    *,
    config: CorpusConfig = DEFAULT_CONFIG,
) -> float:
    """Closed-form mean inclusion probability of one tag (jitter averaged out).

    The sampling model multiplies the mixture-weighted unit emphasis by a
    lognormal jitter with median 1 and the outcome factor by a clipped
    normal with mean ~1, so the *expected* probability is approximately the
    deterministic part — useful for calibration tests that compare the
    analytic value against Monte Carlo frequencies.
    """
    node = tree[tag_id]
    if not node.is_tag:
        raise ValueError(f"{tag_id!r} is not a classifiable tag")
    archetypes = _mixture_archetype(mixture)
    unit = _unit_key(tree, tag_id)
    base = sum(w * a.weight(unit) for a, w in archetypes)
    tier = node.tier if node.tier is not None else Tier.CORE2
    p = base * config.tier_keep.get(tier, 0.5)
    if node.kind is NodeKind.OUTCOME:
        p *= config.outcome_keep * sum(a.outcome_bias * w for a, w in archetypes)
    p = min(p, 1.0)
    return p + (1.0 - p) * config.noise_rate


def sample_pdc12_tags(
    pdc_tree: GuidelineTree,
    mixture: Mapping[str, float],
    *,
    seed: RngLike = None,
    config: CorpusConfig = DEFAULT_CONFIG,
) -> frozenset[str]:
    """Draw a course's PDC12 classifications (usually empty for non-PDC).

    Same machinery as :func:`sample_course_tags` but driven by the
    archetypes' ``pdc12_unit_weights``; no idiosyncratic noise floor —
    courses with no PDC profile get no PDC12 tags.
    """
    rng = as_rng(seed)
    archetypes = _mixture_archetype(mixture)
    if not any(a.pdc12_unit_weights for a, _ in archetypes):
        return frozenset()
    sigma = config.instructor_sigma * sum(a.dispersion * w for a, w in archetypes)
    unit_jitter: dict[str, float] = {}
    chosen: set[str] = set()
    for node in pdc_tree.tags():
        unit = _unit_key(pdc_tree, node.id)
        base = sum(w * a.pdc12_weight(unit) for a, w in archetypes)
        if base <= 0:
            continue
        if unit not in unit_jitter:
            unit_jitter[unit] = float(np.exp(rng.normal(0.0, sigma)))
        tier = node.tier if node.tier is not None else Tier.CORE2
        p = min(base * unit_jitter[unit] * config.tier_keep.get(tier, 0.5), 1.0)
        if rng.random() < p:
            chosen.add(node.id)
    return frozenset(chosen)


def _synthesize_materials(
    course_id: str,
    tags: frozenset[str],
    rng: np.random.Generator,
    config: CorpusConfig,
) -> list[Material]:
    """Build a realistic material list that carries exactly ``tags``.

    Tags are grouped into lecture "modules"; each module gets a lecture
    (full coverage) and an assignment (a subset); exams sample across the
    whole course.  The union of all mappings equals ``tags`` because the
    lectures alone already cover everything.
    """
    tag_list = sorted(tags)
    rng.shuffle(tag_list)
    materials: list[Material] = []
    modules = [
        tag_list[i : i + config.module_size]
        for i in range(0, len(tag_list), config.module_size)
    ]
    for idx, module in enumerate(modules, start=1):
        materials.append(
            Material(
                id=f"{course_id}/lecture-{idx:02d}",
                title=f"Lecture {idx}",
                mtype=MaterialType.LECTURE,
                mappings=frozenset(module),
            )
        )
        n_keep = max(1, int(round(len(module) * config.assignment_fraction)))
        subset = rng.choice(len(module), size=n_keep, replace=False)
        materials.append(
            Material(
                id=f"{course_id}/assignment-{idx:02d}",
                title=f"Assignment {idx}",
                mtype=MaterialType.ASSIGNMENT,
                mappings=frozenset(module[i] for i in subset),
            )
        )
    if tag_list:
        for e in range(1, config.exam_count + 1):
            n_keep = max(1, int(round(len(tag_list) * config.exam_fraction)))
            subset = rng.choice(len(tag_list), size=min(n_keep, len(tag_list)), replace=False)
            materials.append(
                Material(
                    id=f"{course_id}/exam-{e}",
                    title=f"Exam {e}",
                    mtype=MaterialType.EXAM,
                    mappings=frozenset(tag_list[i] for i in subset),
                )
            )
    return materials


def generate_course(
    entry: RosterEntry,
    tree: GuidelineTree,
    *,
    pdc_tree: GuidelineTree | None = None,
    seed: RngLike = None,
    config: CorpusConfig = DEFAULT_CONFIG,
) -> Course:
    """Generate the full :class:`Course` for one roster entry.

    With ``pdc_tree`` supplied, archetypes carrying PDC12 unit weights also
    classify against that guideline (dual classification, as CS Materials
    supports); the PDC12 tags join the same synthesized materials.
    """
    rng = as_rng(seed)
    tags = sample_course_tags(tree, entry.mixture, seed=rng, config=config)
    if pdc_tree is not None:
        tags |= sample_pdc12_tags(pdc_tree, entry.mixture, seed=rng, config=config)
    materials = _synthesize_materials(entry.id, tags, rng, config)
    return Course(
        id=entry.id,
        name=entry.display_name,
        institution=entry.institution,
        instructor=entry.instructor,
        labels=entry.labels,
        materials=materials,
    )


def _course_seed(base_seed: int, course_id: str) -> np.random.Generator:
    """Independent, reproducible generator derived from (seed, course id)."""
    digest = np.frombuffer(course_id.encode(), dtype=np.uint8)
    return np.random.default_rng(
        np.random.SeedSequence([base_seed, int(digest.sum()), len(course_id), *digest[:8]])
    )


def generate_corpus(
    tree: GuidelineTree,
    *,
    seed: int = 0,
    roster: Sequence[RosterEntry] = ROSTER,
    config: CorpusConfig = DEFAULT_CONFIG,
    pdc_tree: GuidelineTree | None = None,
) -> list[Course]:
    """Generate every course of ``roster`` (default: the 20 retained ones).

    Note: the canonical dataset is generated *without* ``pdc_tree`` so the
    CS2013-only figures stay bit-identical; pass ``load_pdc12()`` to get the
    dual-classified variant.
    """
    return [
        generate_course(
            entry, tree,
            pdc_tree=pdc_tree,
            seed=_course_seed(seed, entry.id),
            config=config,
        )
        for entry in roster
    ]


def synthetic_roster(
    n_courses: int,
    *,
    seed: RngLike = None,
    start: int = 0,
) -> list[RosterEntry]:
    """Random roster for scaling experiments.

    Courses draw a dominant archetype plus (30% of the time) a 70/30 blend
    with a second archetype — the mixture structure observed in the real
    roster.  ``start`` offsets the generated ids/names, so successive
    windows (``start=0``, ``start=n``, …) drawn from one shared rng stream
    concatenate into exactly the roster a single big call would produce —
    the streamed generator's batching hook.
    """
    if n_courses < 1:
        raise ValueError("n_courses must be >= 1")
    rng = as_rng(seed)
    names = sorted(ARCHETYPES)
    entries: list[RosterEntry] = []
    for i in range(start, start + n_courses):
        primary = names[int(rng.integers(len(names)))]
        if rng.random() < 0.3:
            secondary = names[int(rng.integers(len(names)))]
            mixture = (
                {primary: 1.0}
                if secondary == primary
                else {primary: 0.7, secondary: 0.3}
            )
        else:
            mixture = {primary: 1.0}
        entries.append(
            RosterEntry(
                id=f"synth-{i:05d}",
                institution=f"Synth U {i % 97}",
                code=f"CS {100 + i % 400}",
                instructor=f"Instructor {i}",
                name=f"Synthetic course {i} ({primary})",
                labels=frozenset(),
                mixture=mixture,
            )
        )
    return entries
