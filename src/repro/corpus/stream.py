"""Streamed corpus generation and bounded-memory chunked ingestion.

The tolerant loaders of :mod:`repro.corpus.ingest` parse a whole corpus
file into RAM before validating — fine at paper scale (31 records), fatal
at the 100k–1M-material corpora the roadmap targets.  This module is the
scale-out counterpart:

* :func:`generate_stream` yields synthetic courses one at a time, drawing
  roster windows from a single shared rng stream so the concatenation of
  all windows is exactly the roster one big :func:`synthetic_roster` call
  would produce, and seeding each course by ``(seed, course id)`` — so the
  stream is reproducible and independent of the window size;
* a JSONL on-disk layout (:func:`save_courses_jsonl` /
  :func:`iter_course_records`): a one-line envelope header followed by one
  course object per line, readable without ever holding two courses in
  memory at once;
* :func:`ingest_stream` pipes any record iterator through
  :func:`repro.corpus.ingest.ingest_courses` (record-level validation) and
  ``repo.ingest`` (repository-level validation) in bounded chunks,
  keeping the PR-5 exclusion accounting — every dropped record still gets
  an :class:`~repro.materials.ingest.ExcludedRecord` with a stable reason
  — while retaining only course *ids*, never the parsed courses, so the
  report stays O(corpus) in ids rather than in materials.

Duplicate course ids are caught at either distance: inside one chunk by
``ingest_courses``'s batch-local seen-set, across chunks by the
repository's own id check — both report ``duplicate-course-id``, so the
split is identical to a single unchunked ingest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.corpus.generator import (
    DEFAULT_CONFIG,
    CorpusConfig,
    _course_seed,
    generate_course,
    synthetic_roster,
)
from repro.corpus.ingest import ingest_courses
from repro.io.json_io import FORMAT_VERSION, course_from_dict, course_to_dict
from repro.materials.course import Course
from repro.materials.ingest import ExcludedRecord
from repro.ontology.tree import GuidelineTree
from repro.runtime.metrics import metrics
from repro.util.rng import as_rng

#: JSONL envelope marker — same format family/version as the array layout
#: of :mod:`repro.io.json_io`, distinguished by ``layout``.
_LAYOUT_JSONL = "jsonl"


# -- streamed generation -----------------------------------------------------


def generate_stream(
    tree: GuidelineTree,
    *,
    seed: int = 0,
    n_courses: int | None = None,
    n_materials: int | None = None,
    config: CorpusConfig = DEFAULT_CONFIG,
    pdc_tree: GuidelineTree | None = None,
    batch: int = 256,
) -> Iterator[Course]:
    """Yield synthetic courses until a course or material cap is reached.

    Exactly one of ``n_courses`` / ``n_materials`` must be set.  With
    ``n_materials``, generation stops after the course that crosses the
    cap (the total may overshoot by at most one course's materials).
    ``batch`` is the roster window size — an internal memory knob that
    does not affect which courses are produced.
    """
    if (n_courses is None) == (n_materials is None):
        raise ValueError("exactly one of n_courses/n_materials must be set")
    if n_courses is not None and n_courses < 1:
        raise ValueError(f"n_courses must be >= 1, got {n_courses}")
    if n_materials is not None and n_materials < 1:
        raise ValueError(f"n_materials must be >= 1, got {n_materials}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    roster_rng = as_rng(seed)
    materials_out = 0
    courses_out = 0
    start = 0
    while True:
        window = synthetic_roster(batch, seed=roster_rng, start=start)
        start += batch
        for entry in window:
            course = generate_course(
                entry,
                tree,
                pdc_tree=pdc_tree,
                seed=_course_seed(seed, entry.id),
                config=config,
            )
            yield course
            courses_out += 1
            materials_out += len(course.materials)
            if n_courses is not None and courses_out >= n_courses:
                return
            if n_materials is not None and materials_out >= n_materials:
                return


# -- JSONL layout ------------------------------------------------------------


def save_courses_jsonl(courses: Iterable[Course], path: str | Path) -> int:
    """Write courses as JSONL (header line + one course per line).

    Accepts any iterable — in particular :func:`generate_stream` — and
    never holds more than one course in memory.  Returns the number of
    courses written.
    """
    header = {
        "format": "repro-courses",
        "version": FORMAT_VERSION,
        "layout": _LAYOUT_JSONL,
    }
    n = 0
    with Path(path).open("w") as fh:
        fh.write(json.dumps(header) + "\n")
        for course in courses:
            fh.write(json.dumps(course_to_dict(course)) + "\n")
            n += 1
    return n


def iter_course_records(path: str | Path) -> Iterator[Any]:
    """Yield raw course records from a JSONL corpus, one line at a time.

    Envelope problems (missing/invalid header, wrong format/version/
    layout) raise — those are caller errors, as in
    :func:`repro.corpus.ingest.load_courses_tolerant`.  A malformed *body*
    line is corpus noise: it is yielded as the raw string so the tolerant
    ingest path records it as ``unparsable`` instead of aborting the load.
    """
    with Path(path).open() as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError(f"{path}: empty file, expected a JSONL header")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: invalid JSONL header: {exc}") from None
        if not isinstance(header, dict) or header.get("format") != "repro-courses":
            raise ValueError(f"{path}: not a repro course file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported version {header.get('version')} "
                f"(expected {FORMAT_VERSION})"
            )
        if header.get("layout") != _LAYOUT_JSONL:
            raise ValueError(
                f"{path}: unsupported layout {header.get('layout')!r} "
                f"(expected {_LAYOUT_JSONL!r})"
            )
        for line in fh:
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                yield line  # tolerant ingest will exclude it as unparsable


def load_courses_jsonl(path: str | Path) -> list[Course]:
    """Strict JSONL loader (every record must parse); for round-trips."""
    return [course_from_dict(record) for record in iter_course_records(path)]


# -- chunked streaming ingestion ---------------------------------------------


@dataclass
class StreamIngestReport:
    """Bounded-memory ingest accounting: ids and reasons, never courses.

    The streamed sibling of :class:`~repro.materials.ingest.IngestReport`:
    same split semantics and reason vocabulary, but retained courses are
    recorded by id only (they already live in the repository), plus
    per-chunk counters for monotonicity checks.
    """

    retained_ids: list[str] = field(default_factory=list)
    excluded: list[ExcludedRecord] = field(default_factory=list)
    chunks: list[dict[str, int]] = field(default_factory=list)

    @property
    def n_retained(self) -> int:
        return len(self.retained_ids)

    @property
    def n_excluded(self) -> int:
        return len(self.excluded)

    @property
    def n_seen(self) -> int:
        return self.n_retained + self.n_excluded

    @property
    def reasons(self) -> dict[str, int]:
        """Exclusion-reason histogram."""
        out: dict[str, int] = {}
        for rec in self.excluded:
            out[rec.reason] = out.get(rec.reason, 0) + 1
        return out

    def raise_if_excluded(self) -> None:
        """The ``strict=`` escape hatch: fail loudly instead of splitting."""
        if self.excluded:
            listing = "; ".join(str(r) for r in self.excluded)
            raise ValueError(
                f"{self.n_excluded} of {self.n_seen} record(s) malformed: "
                f"{listing}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_seen": self.n_seen,
            "n_retained": self.n_retained,
            "n_excluded": self.n_excluded,
            "n_chunks": len(self.chunks),
            "retained": list(self.retained_ids),
            "excluded": [r.to_dict() for r in self.excluded],
            "reasons": self.reasons,
            "chunks": [dict(c) for c in self.chunks],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        lines = [
            f"retained {self.n_retained} of {self.n_seen} course(s) in "
            f"{len(self.chunks)} chunk(s), excluded {self.n_excluded}"
        ]
        for rec in self.excluded:
            lines.append(f"  - {rec}")
        return "\n".join(lines)


def _chunked(records: Iterable[Any], size: int) -> Iterator[list[Any]]:
    chunk: list[Any] = []
    for raw in records:
        chunk.append(raw)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def ingest_stream(
    repo,
    records: Iterable[Any],
    *,
    trees: Sequence[GuidelineTree] = (),
    chunk_size: int = 512,
    strict: bool = False,
) -> StreamIngestReport:
    """Commit raw course records to ``repo`` in bounded-memory chunks.

    ``repo`` is any repository with the ``ingest`` contract — flat
    :class:`~repro.materials.repository.MaterialRepository` or
    :class:`~repro.materials.sharding.ShardedMaterialRepository`.  Each
    chunk is validated record-by-record (``ingest_courses``, with the
    unknown-tag check when ``trees`` are supplied), the survivors are
    committed, and the parsed courses are dropped before the next chunk
    is read.  The resulting split is identical to a single unchunked
    tolerant ingest of the same records, for any ``chunk_size``.

    ``strict=True`` raises after the full stream, naming every excluded
    record — by which point the retained courses are already committed
    (streaming cannot roll back earlier chunks).
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    report = StreamIngestReport()
    for chunk in _chunked(records, chunk_size):
        corpus_report = ingest_courses(chunk, trees=trees)
        repo_report = repo.ingest(corpus_report.retained)
        report.retained_ids.extend(c.id for c in repo_report.retained)
        report.excluded.extend(corpus_report.excluded)
        report.excluded.extend(repo_report.excluded)
        report.chunks.append(
            {
                "seen": len(chunk),
                "retained": repo_report.n_retained,
                "excluded": corpus_report.n_excluded + repo_report.n_excluded,
            }
        )
        metrics.inc("corpus.stream.chunks")
    if strict:
        report.raise_if_excluded()
    return report
