"""Quarantine-style course ingestion: split, don't crash.

:func:`repro.io.json_io.load_courses` is strict — the first malformed
record aborts the whole load.  Right for round-tripping our own files;
wrong for a corpus of instructor-submitted classifications, where the
paper itself retained 20 of 31 courses and reported the rest excluded.
This module is the tolerant counterpart: every record is validated
independently, malformed ones land in an
:class:`~repro.materials.ingest.ExcludedRecord` with a stable reason
code, and the caller gets the full retained/excluded split as an
:class:`~repro.materials.ingest.IngestReport`.  ``strict=True`` restores
fail-fast behavior — after the full pass, so the error enumerates every
bad record at once.

Validation per record, in order (first failure excludes the course):

1. the record is a JSON object — else ``unparsable``;
2. it carries a non-empty string ``id`` — else ``missing-id``;
3. the id is new in this batch — else ``duplicate-course-id``;
4. every material parses — else ``bad-material`` (with the material id
   when one is present);
5. material ids are unique within the course — else
   ``duplicate-material-id``;
6. when guideline ``trees`` are supplied, every mapping references a
   known node — else ``unknown-tag``.

File-envelope problems (not a ``repro-courses`` file, wrong version,
invalid JSON) still raise: those are caller errors, not corpus noise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.io.json_io import FORMAT_VERSION, course_from_dict, material_from_dict
from repro.materials.course import Course
from repro.materials.ingest import (
    REASON_BAD_MATERIAL,
    REASON_DUPLICATE_COURSE,
    REASON_DUPLICATE_MATERIAL,
    REASON_MISSING_ID,
    REASON_UNKNOWN_TAG,
    REASON_UNPARSABLE,
    ExcludedRecord,
    IngestReport,
)
from repro.ontology.tree import GuidelineTree
from repro.runtime.metrics import metrics


def _check_materials(
    course_id: str,
    raw_materials: Any,
    trees: Sequence[GuidelineTree],
) -> ExcludedRecord | None:
    """First material-level fault in a course record, or ``None``."""
    if not isinstance(raw_materials, (list, tuple)):
        return ExcludedRecord(
            course_id, REASON_UNPARSABLE, detail="materials is not a list"
        )
    seen_ids: set[str] = set()
    for pos, raw in enumerate(raw_materials):
        mat_id = str(raw.get("id", "")) if isinstance(raw, dict) else ""
        try:
            material = material_from_dict(raw)
        except Exception as exc:
            return ExcludedRecord(
                course_id,
                REASON_BAD_MATERIAL,
                detail=f"material #{pos}: {type(exc).__name__}: {exc}",
                material_id=mat_id,
            )
        if material.id in seen_ids:
            return ExcludedRecord(
                course_id,
                REASON_DUPLICATE_MATERIAL,
                detail=f"material id {material.id!r} appears twice",
                material_id=material.id,
            )
        seen_ids.add(material.id)
        if trees:
            unknown = sorted(
                t for t in material.mappings
                if not any(t in tree for tree in trees)
            )
            if unknown:
                return ExcludedRecord(
                    course_id,
                    REASON_UNKNOWN_TAG,
                    detail=f"mappings reference unknown tag(s) {unknown}",
                    material_id=material.id,
                )
    return None


def ingest_courses(
    records: Iterable[Any],
    *,
    trees: Sequence[GuidelineTree] = (),
    strict: bool = False,
) -> IngestReport:
    """Validate raw course dicts into a retained/excluded split.

    ``records`` are course-shaped JSON objects (the ``courses`` array of
    a corpus file, or any equivalent source).  ``trees`` arms the
    unknown-tag check; without them mappings are taken on faith.
    ``strict=True`` raises ``ValueError`` naming every excluded record.
    """
    report = IngestReport()
    seen_course_ids: set[str] = set()
    for pos, raw in enumerate(records):
        record = _ingest_one(pos, raw, seen_course_ids, trees)
        if isinstance(record, ExcludedRecord):
            report.excluded.append(record)
            metrics.inc("corpus.ingest.excluded")
        else:
            seen_course_ids.add(record.id)
            report.retained.append(record)
            metrics.inc("corpus.ingest.retained")
    if strict:
        report.raise_if_excluded()
    return report


def _ingest_one(
    pos: int,
    raw: Any,
    seen_course_ids: set[str],
    trees: Sequence[GuidelineTree],
) -> Course | ExcludedRecord:
    """Validate one raw record; a :class:`Course` iff it is clean."""
    if not isinstance(raw, dict):
        return ExcludedRecord(
            "", REASON_UNPARSABLE,
            detail=f"record #{pos} is {type(raw).__name__}, not an object",
        )
    course_id = raw.get("id")
    if not isinstance(course_id, str) or not course_id:
        return ExcludedRecord(
            "", REASON_MISSING_ID, detail=f"record #{pos} has no usable id"
        )
    if course_id in seen_course_ids:
        return ExcludedRecord(
            course_id, REASON_DUPLICATE_COURSE,
            detail=f"course id {course_id!r} already seen in this batch",
        )
    fault = _check_materials(course_id, raw.get("materials", []), trees)
    if fault is not None:
        return fault
    try:
        return course_from_dict(raw)
    except Exception as exc:
        # Course-level fields (name, labels, …) failed to parse.
        return ExcludedRecord(
            course_id, REASON_UNPARSABLE,
            detail=f"{type(exc).__name__}: {exc}",
        )


def load_courses_tolerant(
    path: str | Path,
    *,
    trees: Sequence[GuidelineTree] = (),
    strict: bool = False,
) -> IngestReport:
    """Tolerant counterpart of :func:`repro.io.json_io.load_courses`.

    The file envelope (JSON syntax, ``repro-courses`` format marker,
    version) must be valid — those failures raise.  Individual course
    records inside it go through :func:`ingest_courses`.
    """
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != "repro-courses":
        raise ValueError(f"{path}: not a repro course file")
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported version {doc.get('version')} "
            f"(expected {FORMAT_VERSION})"
        )
    courses = doc.get("courses", ())
    if not isinstance(courses, list):
        raise ValueError(f"{path}: 'courses' is not a list")
    return ingest_courses(courses, trees=trees, strict=strict)
