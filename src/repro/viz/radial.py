"""Radial tree layout (§3.1.1).

"The tree is arranged radially by identifying the level with the most
nodes, known as the reference level, and uniformly spacing all nodes at
that level."

Algorithm: nodes at the reference level receive uniform angles in subtree
(preorder) order; every other node takes the mean angle of its subtree's
reference-level descendants (or interpolates between neighbors when its
subtree does not reach that level).  Radius is proportional to depth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ontology.queries import reference_level
from repro.ontology.tree import GuidelineTree


@dataclass(frozen=True)
class RadialLayout:
    """Node positions of a radial tree drawing.

    ``positions[node_id] = (x, y)``; ``angles`` in radians;
    ``reference_level`` is the depth that was uniformly spaced.
    """

    tree: GuidelineTree
    positions: dict[str, tuple[float, float]]
    angles: dict[str, float]
    reference_level: int
    ring_radius: float

    def radius_of(self, node_id: str) -> float:
        return self.tree.depth(node_id) * self.ring_radius


def radial_layout(
    tree: GuidelineTree,
    *,
    ring_radius: float = 80.0,
) -> RadialLayout:
    """Compute the radial layout of ``tree``."""
    ref = reference_level(tree)
    # Reference nodes in preorder = subtree-contiguous angular order.
    ref_nodes = [nid for nid in tree.iter_preorder_ids() if tree.depth(nid) == ref]
    angles: dict[str, float] = {}
    n_ref = len(ref_nodes)
    for i, nid in enumerate(ref_nodes):
        angles[nid] = 2.0 * math.pi * i / max(n_ref, 1)

    # Everything else: mean of reference-level descendants when available.
    def assign(nid: str) -> list[float]:
        """Returns reference angles within this subtree; assigns on the way up."""
        if tree.depth(nid) == ref:
            return [angles[nid]]
        collected: list[float] = []
        for kid in tree.child_ids(nid):
            collected.extend(assign(kid))
        if nid not in angles:
            if collected:
                angles[nid] = _circular_mean(collected)
        return collected

    assign(tree.root_id)
    # Nodes whose subtree misses the reference level (shallow leaves above
    # it, or anything below it) inherit the parent's angle with sibling
    # fan-out.
    for nid in tree.iter_preorder_ids():
        if nid in angles:
            continue
        parent = tree.parent_id(nid)
        base = angles.get(parent, 0.0) if parent is not None else 0.0
        siblings = [s for s in tree.child_ids(parent)] if parent is not None else [nid]
        idx = siblings.index(nid)
        spread = (math.pi / 16) * (idx - (len(siblings) - 1) / 2)
        angles[nid] = base + spread

    positions = {}
    for nid in tree.iter_preorder_ids():
        r = tree.depth(nid) * ring_radius
        a = angles[nid]
        positions[nid] = (r * math.cos(a), r * math.sin(a))
    return RadialLayout(
        tree=tree,
        positions=positions,
        angles=angles,
        reference_level=ref,
        ring_radius=ring_radius,
    )


def _circular_mean(angles: list[float]) -> float:
    """Mean of angles, handling the 2π wrap (e.g. 350° and 10° → 0°)."""
    sx = sum(math.cos(a) for a in angles)
    sy = sum(math.sin(a) for a in angles)
    if sx == 0 and sy == 0:
        return angles[0]
    return math.atan2(sy, sx) % (2.0 * math.pi)
