"""Terminal renderings of matrices and distributions.

Benchmarks print these so the regenerated "figures" are directly readable
in CI logs — e.g. the Figure 2 heat map of the NNMF W matrix appears as a
row of intensity glyphs per course.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Intensity ramp used by heat maps, light to dark.
_RAMP = " .:-=+*#%@"


def _glyph(value: float, vmax: float) -> str:
    if vmax <= 0:
        return _RAMP[0]
    q = min(max(value / vmax, 0.0), 1.0)
    return _RAMP[min(int(q * (len(_RAMP) - 1) + 0.5), len(_RAMP) - 1)]


def ascii_heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[str] | None = None,
    col_labels: Sequence[str] | None = None,
    *,
    cell_width: int = 3,
    normalize: str = "global",
) -> str:
    """Render a matrix as an intensity-glyph heat map.

    ``normalize`` is ``"global"`` (one scale for the whole matrix) or
    ``"row"`` (each row on its own scale — the right view for NNMF W
    matrices where courses differ in total mass).
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ValueError(f"heatmap needs a 2-D matrix, got shape {m.shape}")
    if normalize not in ("global", "row"):
        raise ValueError(f"unknown normalize {normalize!r}")
    labels = [str(l) for l in row_labels] if row_labels is not None else [""] * m.shape[0]
    if row_labels is not None and len(labels) != m.shape[0]:
        raise ValueError("row_labels length mismatch")
    width = max((len(l) for l in labels), default=0)
    lines = []
    if col_labels is not None:
        if len(col_labels) != m.shape[1]:
            raise ValueError("col_labels length mismatch")
        header = " " * (width + 2) + "".join(
            str(c)[: cell_width - 1].ljust(cell_width) for c in col_labels
        )
        lines.append(header.rstrip())
    gmax = float(m.max()) if m.size else 0.0
    for i in range(m.shape[0]):
        vmax = float(m[i].max()) if normalize == "row" and m.shape[1] else gmax
        cells = "".join(
            (_glyph(m[i, j], vmax) * (cell_width - 1)).ljust(cell_width)
            for j in range(m.shape[1])
        )
        lines.append(f"{labels[i].ljust(width)}  {cells}".rstrip())
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    *,
    width: int = 60,
    label: str = "",
) -> str:
    """Render a decreasing series as a horizontal density strip plus stats.

    Used for the Figure 3 agreement distributions: ``values`` is "how many
    courses each tag appears in", sorted decreasing.
    """
    vals = [float(v) for v in values]
    if not vals:
        return f"{label}(empty)"
    vmax = max(vals)
    n = len(vals)
    # Downsample to `width` columns by taking column-wise maxima.
    cols = []
    for c in range(min(width, n)):
        lo = c * n // min(width, n)
        hi = max(lo + 1, (c + 1) * n // min(width, n))
        cols.append(max(vals[lo:hi]))
    bars = "▁▂▃▄▅▆▇█"
    strip = "".join(
        bars[min(int(v / vmax * (len(bars) - 1) + 0.5), len(bars) - 1)] if vmax > 0 else bars[0]
        for v in cols
    )
    return f"{label}{strip}  (n={n}, max={vmax:g})"


def ascii_bars(
    items: Sequence[tuple[str, float]],
    *,
    width: int = 40,
) -> str:
    """Horizontal labeled bar chart (e.g. tags-at-threshold per area)."""
    if not items:
        return "(empty)"
    vmax = max(v for _, v in items)
    name_w = max(len(k) for k, _ in items)
    lines = []
    for k, v in items:
        bar = "#" * (int(v / vmax * width + 0.5) if vmax > 0 else 0)
        lines.append(f"{k.ljust(name_w)}  {bar} {v:g}")
    return "\n".join(lines)


def ascii_matrix(
    matrix: np.ndarray,
    *,
    on: str = "x",
    off: str = ".",
) -> str:
    """Render a 0/1 matrix compactly (the bi-clustered matrix view)."""
    m = np.asarray(matrix)
    if m.ndim != 2:
        raise ValueError(f"needs a 2-D matrix, got shape {m.shape}")
    return "\n".join("".join(on if v else off for v in row) for row in (m > 0))


def ascii_scatter(
    points: "dict[str, tuple[float, float]]",
    *,
    width: int = 64,
    height: int = 20,
    label_points: bool = True,
) -> str:
    """Render labeled 2-D points (e.g. an MDS course map) as a text grid.

    Each point paints a marker; with ``label_points`` the first two
    characters of the id follow the marker when space allows.  Returns a
    framed grid with the origin of the data preserved (axes are scaled to
    the data's bounding box).
    """
    if not points:
        return "(no points)"
    if width < 8 or height < 4:
        raise ValueError("grid too small")
    xs = [p[0] for p in points.values()]
    ys = [p[1] for p in points.values()]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    dx = (x1 - x0) or 1.0
    dy = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for name, (x, y) in sorted(points.items()):
        col = int((x - x0) / dx * (width - 1))
        row = int((y1 - y) / dy * (height - 1))
        grid[row][col] = "o"
        if label_points:
            tag = name[:2]
            for k, ch in enumerate(tag, start=1):
                if col + k < width and grid[row][col + k] == " ":
                    grid[row][col + k] = ch
    top = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(r) + "|" for r in grid)
    return f"{top}\n{body}\n{top}"
