"""ASCII Gantt chart of a simulated schedule.

The list-scheduling simulator (§5.2's proposed assignment) becomes much
more teachable when students can *see* the processors filling up; one line
per processor, time flowing right.
"""

from __future__ import annotations

from repro.taskgraph.scheduling import Schedule


def ascii_gantt(
    schedule: Schedule,
    *,
    width: int = 72,
    label_width: int = 8,
) -> str:
    """Render ``schedule`` as a fixed-width Gantt chart.

    Each task paints its id's characters over its time span (cycling when
    the span is longer than the id); idle time shows as ``.``.  A time
    scale line is appended.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    makespan = schedule.makespan
    if makespan <= 0:
        return "(empty schedule)"
    scale = width / makespan
    lines = []
    for proc in range(schedule.n_processors):
        row = ["."] * width
        for placed in schedule.processor_timeline(proc):
            lo = int(placed.start * scale)
            hi = max(lo + 1, int(placed.finish * scale))
            token = placed.task.replace("/", "")[:3] or "?"
            for i, col in enumerate(range(lo, min(hi, width))):
                row[col] = token[i % len(token)]
        lines.append(f"P{proc:<{label_width - 1}}|{''.join(row)}|")
    ticks = 6
    marks = []
    for i in range(ticks + 1):
        marks.append(f"{makespan * i / ticks:.0f}")
    spacing = max(1, (width - len(marks[-1])) // ticks)
    scale_line = " " * label_width + "+" + "-" * width + "+"
    time_line = " " * (label_width + 1) + "".join(
        m.ljust(spacing) for m in marks[:-1]
    ) + marks[-1]
    return "\n".join([*lines, scale_line, time_line])
