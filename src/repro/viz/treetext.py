"""Plain-text rendering of guideline (sub)trees.

The CI-friendly counterpart of the radial SVG: agreement trees and
hit-trees print as indented outlines with per-node weights, so the Figure
4/6/8 content is directly readable in logs.
"""

from __future__ import annotations

from typing import Callable

from repro.materials.hittree import HitTree
from repro.ontology.tree import GuidelineTree

_LAST, _MID = "└─ ", "├─ "
_GAP, _PIPE = "   ", "│  "


def render_tree_text(
    tree: GuidelineTree,
    *,
    label_of: Callable[[str], str] | None = None,
    max_label: int = 72,
) -> str:
    """Indented outline of ``tree`` (box-drawing connectors)."""

    def label(nid: str) -> str:
        text = label_of(nid) if label_of is not None else tree[nid].label
        return text if len(text) <= max_label else text[: max_label - 1] + "…"

    lines = [label(tree.root_id)]

    def walk(nid: str, prefix: str) -> None:
        kids = tree.child_ids(nid)
        for i, kid in enumerate(kids):
            last = i == len(kids) - 1
            lines.append(prefix + (_LAST if last else _MID) + label(kid))
            walk(kid, prefix + (_GAP if last else _PIPE))

    walk(tree.root_id, "")
    return "\n".join(lines)


def render_hit_tree_text(hit: HitTree, *, max_label: int = 60) -> str:
    """Outline of a hit-tree with ``[weight]`` (and alignment) per node."""

    def label(nid: str) -> str:
        node = hit.tree[nid]
        base = node.label if len(node.label) <= max_label else node.label[: max_label - 1] + "…"
        extra = f" [{hit.weight(nid)}]"
        if hit.colors is not None:
            extra += f" ({hit.color(nid):+.2f})"
        return base + extra

    return render_tree_text(hit.tree, label_of=label, max_label=max_label + 20)
