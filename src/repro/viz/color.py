"""Color scales.

The alignment hit-tree uses a divergent scale over [-1, +1] where the
mid-point (0, fully aligned) is neutral (§3.1.1); coverage views use a
sequential scale.
"""

from __future__ import annotations

Rgb = tuple[int, int, int]

#: Divergent endpoints/midpoint: blue → light gray → red.
_DIV_LO: Rgb = (33, 102, 172)
_DIV_MID: Rgb = (245, 245, 245)
_DIV_HI: Rgb = (178, 24, 43)

#: Sequential ramp endpoints: near-white → dark green.
_SEQ_LO: Rgb = (247, 252, 245)
_SEQ_HI: Rgb = (0, 68, 27)


def _lerp(a: Rgb, b: Rgb, t: float) -> Rgb:
    t = min(max(t, 0.0), 1.0)
    return tuple(int(round(a[i] + (b[i] - a[i]) * t)) for i in range(3))  # type: ignore[return-value]


def diverging_color(value: float) -> Rgb:
    """Map [-1, +1] onto the divergent scale; values are clamped."""
    v = min(max(float(value), -1.0), 1.0)
    if v < 0:
        return _lerp(_DIV_MID, _DIV_LO, -v)
    return _lerp(_DIV_MID, _DIV_HI, v)


def sequential_color(value: float) -> Rgb:
    """Map [0, 1] onto the sequential scale; values are clamped."""
    return _lerp(_SEQ_LO, _SEQ_HI, float(value))


def hex_color(rgb: Rgb) -> str:
    """``(r, g, b)`` → ``"#rrggbb"``."""
    r, g, b = rgb
    for c in (r, g, b):
        if not 0 <= c <= 255:
            raise ValueError(f"channel out of range: {rgb}")
    return f"#{r:02x}{g:02x}{b:02x}"
