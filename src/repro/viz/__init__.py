"""Visualization: ASCII renderings for terminals/CI, SVG for documents.

Reproduces the informational content of the paper's figures:

* :mod:`~repro.viz.ascii` — heat maps (Figures 2, 5a, 7a), agreement
  histograms (Figure 3), labeled tables (Figure 1).
* :mod:`~repro.viz.radial` — the radial hit-tree layout (Figures 4, 6, 8):
  reference-level detection, uniform angular spacing, node size by material
  count, divergent color by alignment.
* :mod:`~repro.viz.svg` — a dependency-free SVG writer for the radial trees
  and heat maps.
* :mod:`~repro.viz.color` — divergent / sequential color scales.
"""

from repro.viz.ascii import ascii_heatmap, ascii_histogram, ascii_matrix, ascii_scatter
from repro.viz.color import diverging_color, hex_color, sequential_color
from repro.viz.radial import RadialLayout, radial_layout
from repro.viz.svg import SvgCanvas, render_heatmap_svg, render_radial_svg
from repro.viz.gantt import ascii_gantt
from repro.viz.treetext import render_hit_tree_text, render_tree_text

__all__ = [
    "ascii_heatmap",
    "ascii_histogram",
    "ascii_matrix",
    "ascii_scatter",
    "diverging_color",
    "sequential_color",
    "hex_color",
    "RadialLayout",
    "radial_layout",
    "SvgCanvas",
    "render_heatmap_svg",
    "render_radial_svg",
    "ascii_gantt",
    "render_hit_tree_text",
    "render_tree_text",
]
