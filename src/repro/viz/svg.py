"""Dependency-free SVG output.

Renders the radial hit-trees (Figures 4, 6, 8) and heat maps (Figures 2,
5, 7) as standalone ``.svg`` documents.  Only the handful of SVG elements
actually needed are wrapped.
"""

from __future__ import annotations

import math
from typing import Sequence
from xml.sax.saxutils import escape

import numpy as np

from repro.materials.hittree import HitTree
from repro.ontology.node import NodeKind
from repro.viz.color import diverging_color, hex_color, sequential_color
from repro.viz.radial import radial_layout


class SvgCanvas:
    """Accumulates SVG elements; emits a complete document."""

    def __init__(self, width: float, height: float) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._elems: list[str] = []

    def line(self, x1: float, y1: float, x2: float, y2: float, *,
             stroke: str = "#999", stroke_width: float = 1.0) -> None:
        self._elems.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width:.2f}"/>'
        )

    def circle(self, cx: float, cy: float, r: float, *,
               fill: str = "#333", stroke: str = "none") -> None:
        self._elems.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" '
            f'fill="{fill}" stroke="{stroke}"/>'
        )

    def rect(self, x: float, y: float, w: float, h: float, *,
             fill: str = "#333", stroke: str = "none") -> None:
        self._elems.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" '
            f'fill="{fill}" stroke="{stroke}"/>'
        )

    def text(self, x: float, y: float, content: str, *,
             size: float = 10.0, anchor: str = "start", fill: str = "#000") -> None:
        self._elems.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size:.1f}" '
            f'text-anchor="{anchor}" fill="{fill}" '
            f'font-family="sans-serif">{escape(content)}</text>'
        )

    def to_string(self) -> str:
        body = "\n  ".join(self._elems)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width:.0f}" height="{self.height:.0f}" '
            f'viewBox="0 0 {self.width:.0f} {self.height:.0f}">\n  {body}\n</svg>\n'
        )


def render_radial_svg(
    hit_tree: HitTree,
    *,
    ring_radius: float = 80.0,
    max_node_radius: float = 14.0,
    label_areas: bool = True,
) -> str:
    """Render a hit-tree as a radial SVG drawing.

    Node size scales with the subtree material count; color uses the
    divergent scale when alignment colors are present (root drawn in red,
    as in the paper's figures).
    """
    tree = hit_tree.tree
    layout = radial_layout(tree, ring_radius=ring_radius)
    extent = (tree.height() + 1) * ring_radius + 40
    size = 2 * extent
    canvas = SvgCanvas(size, size)

    def pos(nid: str) -> tuple[float, float]:
        x, y = layout.positions[nid]
        return x + extent, y + extent

    for nid in tree.iter_preorder_ids():
        for kid in tree.child_ids(nid):
            x1, y1 = pos(nid)
            x2, y2 = pos(kid)
            canvas.line(x1, y1, x2, y2, stroke="#bbb")
    max_w = max(hit_tree.weights.values(), default=1) or 1
    for nid in tree.iter_preorder_ids():
        x, y = pos(nid)
        w = hit_tree.weight(nid)
        r = 3.0 + (max_node_radius - 3.0) * math.sqrt(w / max_w)
        if nid == tree.root_id:
            fill = "#d62728"  # "Root in red" (Figures 4/6/8 captions)
        elif hit_tree.colors is not None:
            fill = hex_color(diverging_color(hit_tree.color(nid)))
        else:
            fill = hex_color(sequential_color(min(w / max_w, 1.0)))
        canvas.circle(x, y, r, fill=fill, stroke="#555")
        node = tree[nid]
        if label_areas and node.kind is NodeKind.AREA:
            canvas.text(x + r + 2, y - 2, node.meta.get("code", node.short_id), size=11.0)
    return canvas.to_string()


def render_heatmap_svg(
    matrix: np.ndarray,
    row_labels: Sequence[str] | None = None,
    *,
    cell: float = 18.0,
    normalize: str = "row",
) -> str:
    """Render a matrix as an SVG heat map (the Figure 2/5a/7a form)."""
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ValueError(f"heatmap needs a 2-D matrix, got {m.shape}")
    if normalize not in ("row", "global"):
        raise ValueError(f"unknown normalize {normalize!r}")
    label_w = 180.0 if row_labels is not None else 0.0
    canvas = SvgCanvas(label_w + m.shape[1] * cell + 10, m.shape[0] * cell + 10)
    gmax = float(m.max()) if m.size else 1.0
    for i in range(m.shape[0]):
        vmax = float(m[i].max()) if normalize == "row" else gmax
        for j in range(m.shape[1]):
            q = m[i, j] / vmax if vmax > 0 else 0.0
            canvas.rect(
                label_w + j * cell + 5,
                i * cell + 5,
                cell - 1,
                cell - 1,
                fill=hex_color(sequential_color(q)),
            )
        if row_labels is not None:
            canvas.text(2, i * cell + cell * 0.7 + 5, str(row_labels[i]), size=10.0)
    return canvas.to_string()
