"""Simulation of the course-analysis workshop series.

Models the collection pipeline of §3.2:

1. A series of 2-day workshops (at universities, colocated with
   conferences, or online), ~10 attendees each.
2. Day 1: attendees learn the system and classify their course — modeled
   as corpus generation plus *classification noise* (tags dropped, tags
   displaced to a sibling entry of the guideline), because instructors
   classifying by hand are not perfect oracles.
3. Day 2: coverage/alignment analysis (exercised by examples and tests).
4. A retention screen: courses whose roster entry carries an
   ``excluded_reason`` are excluded — 31 classified, 11 excluded,
   20 retained, matching Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.corpus.generator import CorpusConfig, DEFAULT_CONFIG, generate_course
from repro.corpus.roster import EXCLUDED_ROSTER, ROSTER, RosterEntry
from repro.materials.course import Course
from repro.materials.material import Material
from repro.ontology.tree import GuidelineTree
from repro.util.rng import RngLike, as_rng


@dataclass(frozen=True)
class Attendee:
    """A workshop participant and the course they classified."""

    name: str
    institution: str
    course_id: str


@dataclass(frozen=True)
class Workshop:
    """One 2-day workshop."""

    id: str
    location: str
    format: str                      # "in-person" | "online" | "colocated"
    attendees: tuple[Attendee, ...]

    def __post_init__(self) -> None:
        if self.format not in ("in-person", "online", "colocated"):
            raise ValueError(f"unknown workshop format {self.format!r}")


@dataclass(frozen=True)
class ClassificationNoise:
    """Instructor classification imperfections.

    ``drop_rate`` — probability a genuinely-covered tag is never entered.
    ``displace_rate`` — probability a tag is recorded as a *sibling* entry
    of the guideline instead (misreading adjacent rows of the tree, the
    §5.3 concern that the tree structure shapes what people enter).
    """

    drop_rate: float = 0.05
    displace_rate: float = 0.02

    def __post_init__(self) -> None:
        if not 0 <= self.drop_rate < 1 or not 0 <= self.displace_rate < 1:
            raise ValueError("noise rates must be in [0, 1)")

    def apply(
        self, material: Material, tree: GuidelineTree, rng: np.random.Generator
    ) -> Material:
        """Return a noisy re-classification of one material."""
        if not material.mappings:
            return material
        out: set[str] = set()
        for tag in material.mappings:
            r = rng.random()
            if r < self.drop_rate:
                continue
            if r < self.drop_rate + self.displace_rate and tag in tree:
                parent = tree.parent_id(tag)
                siblings = [
                    s for s in tree.child_ids(parent) if s != tag and tree[s].is_tag
                ] if parent is not None else []
                if siblings:
                    out.add(siblings[int(rng.integers(len(siblings)))])
                    continue
            out.add(tag)
        return material.with_mappings(frozenset(out))


#: Workshop venues loosely following the project's actual series format.
_DEFAULT_VENUES: tuple[tuple[str, str], ...] = (
    ("Charlotte, NC", "in-person"),
    ("Philadelphia, PA", "in-person"),
    ("online", "online"),
    ("SIGCSE (colocated)", "colocated"),
)


@dataclass
class WorkshopSeries:
    """Configuration of a simulated workshop series."""

    tree: GuidelineTree
    roster: Sequence[RosterEntry] = ROSTER
    excluded: Sequence[RosterEntry] = EXCLUDED_ROSTER
    attendees_per_workshop: int = 10
    noise: ClassificationNoise = field(default_factory=ClassificationNoise)
    corpus_config: CorpusConfig = DEFAULT_CONFIG


@dataclass(frozen=True)
class WorkshopSeriesResult:
    """Everything the collection produced.

    ``retained`` are the courses entering the paper's analyses (Figure 1);
    ``excluded`` were classified but screened out; ``exclusion_log`` maps
    course id → reason.
    """

    workshops: tuple[Workshop, ...]
    retained: tuple[Course, ...]
    excluded: tuple[Course, ...]
    exclusion_log: dict[str, str]

    @property
    def n_classified(self) -> int:
        return len(self.retained) + len(self.excluded)


@dataclass(frozen=True)
class YearlySnapshot:
    """State of the collection at the end of one year."""

    year: int
    new_course_ids: tuple[str, ...]
    cumulative: tuple[Course, ...]


def simulate_collection_growth(
    series: WorkshopSeries,
    *,
    n_years: int = 3,
    seed: RngLike = None,
) -> list[YearlySnapshot]:
    """Simulate the multi-year build-up of the collection (§3.2).

    "Over the past three years, we have built and used the CS Materials
    system to build a collection of early CS courses."  The retained roster
    is split into ``n_years`` contiguous waves (workshops happen a few per
    year); each snapshot carries the cumulative corpus, so analyses can be
    replayed against the collection as it stood at any point.  Course
    content is identical to a single-shot simulation with the same seed —
    courses don't change depending on which year they were entered.
    """
    if n_years < 1:
        raise ValueError("n_years must be >= 1")
    result = simulate_workshop_series(series, seed=seed)
    retained = list(result.retained)
    per = -(-len(retained) // n_years)  # ceil division
    snapshots: list[YearlySnapshot] = []
    cumulative: list[Course] = []
    for year in range(1, n_years + 1):
        wave = retained[(year - 1) * per : year * per]
        cumulative.extend(wave)
        snapshots.append(
            YearlySnapshot(
                year=year,
                new_course_ids=tuple(c.id for c in wave),
                cumulative=tuple(cumulative),
            )
        )
    return snapshots


def simulate_workshop_series(
    series: WorkshopSeries, *, seed: RngLike = None
) -> WorkshopSeriesResult:
    """Run the simulated collection end to end."""
    rng = as_rng(seed)
    all_entries: list[RosterEntry] = [*series.roster, *series.excluded]
    # Assign attendees to workshops in roster order, ~10 per workshop.
    workshops: list[Workshop] = []
    per = max(series.attendees_per_workshop, 1)
    for w_idx in range(0, len(all_entries), per):
        chunk = all_entries[w_idx : w_idx + per]
        venue, fmt = _DEFAULT_VENUES[(w_idx // per) % len(_DEFAULT_VENUES)]
        workshops.append(
            Workshop(
                id=f"workshop-{w_idx // per + 1}",
                location=venue,
                format=fmt,
                attendees=tuple(
                    Attendee(e.instructor, e.institution, e.id) for e in chunk
                ),
            )
        )

    retained: list[Course] = []
    excluded: list[Course] = []
    log: dict[str, str] = {}
    for entry in all_entries:
        course = generate_course(
            entry, series.tree, seed=rng, config=series.corpus_config
        )
        noisy = Course(
            id=course.id,
            name=course.name,
            institution=course.institution,
            instructor=course.instructor,
            labels=course.labels,
            materials=[
                series.noise.apply(m, series.tree, rng) for m in course.materials
            ],
        )
        if entry.excluded_reason:
            excluded.append(noisy)
            log[entry.id] = entry.excluded_reason
        else:
            retained.append(noisy)
    return WorkshopSeriesResult(
        workshops=tuple(workshops),
        retained=tuple(retained),
        excluded=tuple(excluded),
        exclusion_log=log,
    )
