"""Course-analysis workshop simulation (§3.2).

The paper's data came from 2-day workshops (~10 attendees each, some online)
where instructors classified one course each; 31 courses were fully
classified, 11 were excluded for technical reasons, 20 retained.  This
package simulates that collection process end to end — including classifier
noise and the exclusion screen — so the analysis pipeline consumes data with
the same provenance structure as the paper's.
"""

from repro.workshops.simulation import (
    Attendee,
    ClassificationNoise,
    Workshop,
    WorkshopSeries,
    WorkshopSeriesResult,
    YearlySnapshot,
    simulate_collection_growth,
    simulate_workshop_series,
)

__all__ = [
    "Attendee",
    "ClassificationNoise",
    "Workshop",
    "WorkshopSeries",
    "WorkshopSeriesResult",
    "YearlySnapshot",
    "simulate_collection_growth",
    "simulate_workshop_series",
]
