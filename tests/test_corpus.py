"""Tests for the corpus generator: archetypes, roster, course synthesis."""

import numpy as np
import pytest

from repro.corpus.archetypes import ARCHETYPES, Archetype
from repro.corpus.generator import (
    CorpusConfig,
    generate_corpus,
    generate_course,
    sample_course_tags,
    synthetic_roster,
)
from repro.corpus.roster import EXCLUDED_ROSTER, ROSTER, RosterEntry
from repro.materials.course import CourseLabel
from repro.materials.material import MaterialRole


class TestArchetypes:
    def test_registry_complete(self):
        assert len(ARCHETYPES) == 11
        for name, a in ARCHETYPES.items():
            assert a.name == name

    def test_weights_in_unit_interval(self):
        for a in ARCHETYPES.values():
            assert all(0 <= w <= 1 for w in a.unit_weights.values())

    def test_unknown_unit_weight_zero(self):
        assert ARCHETYPES["pdc"].weight("XX/YY") == 0.0

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            Archetype("bad", {"A/B": 1.5})

    def test_invalid_dispersion_rejected(self):
        with pytest.raises(ValueError):
            Archetype("bad", {}, dispersion=0.0)

    def test_unit_keys_resolve_to_real_units(self, cs2013):
        unit_keys = {
            f"{u.split('/')[1]}/{u.split('/')[2]}"
            for u in (n.id for n in cs2013.iter_preorder())
            if u.count("/") == 2
        }
        for a in ARCHETYPES.values():
            for key in a.unit_weights:
                assert key in unit_keys, f"{a.name}: unknown unit {key}"

    def test_pdc_archetype_favors_pd(self):
        pdc = ARCHETYPES["pdc"]
        pd_weight = max(w for u, w in pdc.unit_weights.items() if u.startswith("PD/"))
        other = max(w for u, w in pdc.unit_weights.items() if not u.startswith("PD/"))
        assert pd_weight > other


class TestRoster:
    def test_counts_match_figure_1(self):
        assert len(ROSTER) == 20
        assert len(EXCLUDED_ROSTER) == 11
        count = lambda l: sum(1 for e in ROSTER if l in e.labels)
        assert count(CourseLabel.CS1) == 6
        assert count(CourseLabel.DS) == 5
        assert count(CourseLabel.ALGO) == 2
        assert count(CourseLabel.SOFTENG) == 2
        assert count(CourseLabel.PDC) == 3
        assert count(CourseLabel.OOP) == 2

    def test_ids_unique(self):
        ids = [e.id for e in (*ROSTER, *EXCLUDED_ROSTER)]
        assert len(set(ids)) == len(ids)

    def test_mixtures_sum_to_one(self):
        for e in (*ROSTER, *EXCLUDED_ROSTER):
            assert sum(e.mixture.values()) == pytest.approx(1.0)
            for name in e.mixture:
                assert name in ARCHETYPES

    def test_excluded_have_reasons_retained_do_not(self):
        assert all(e.excluded_reason for e in EXCLUDED_ROSTER)
        assert all(not e.excluded_reason for e in ROSTER)

    def test_bad_mixture_rejected(self):
        with pytest.raises(ValueError):
            RosterEntry("x", "U", "C", "I", "N", frozenset(), {"pdc": 0.5})

    def test_singh_is_java_oop(self):
        singh = next(e for e in ROSTER if e.id == "washu-131-singh")
        assert singh.language == "Java"
        assert singh.mixture == {"cs1-oop": 1.0}


class TestSampling:
    def test_deterministic_given_seed(self, cs2013):
        t1 = sample_course_tags(cs2013, {"pdc": 1.0}, seed=5)
        t2 = sample_course_tags(cs2013, {"pdc": 1.0}, seed=5)
        assert t1 == t2

    def test_different_seeds_differ(self, cs2013):
        t1 = sample_course_tags(cs2013, {"pdc": 1.0}, seed=1)
        t2 = sample_course_tags(cs2013, {"pdc": 1.0}, seed=2)
        assert t1 != t2

    def test_tags_exist_in_tree(self, cs2013):
        tags = sample_course_tags(cs2013, {"cs1-imperative": 1.0}, seed=3)
        assert all(t in cs2013 for t in tags)
        assert all(cs2013[t].is_tag for t in tags)

    def test_archetype_shapes_content(self, cs2013):
        """A PDC course must hit PD much harder than a CS1 course does."""
        pd_share = {}
        for name in ("pdc", "cs1-imperative"):
            counts = []
            for seed in range(5):
                tags = sample_course_tags(cs2013, {name: 1.0}, seed=seed)
                pd = sum(1 for t in tags if t.startswith("CS2013/PD/"))
                counts.append(pd / max(len(tags), 1))
            pd_share[name] = np.mean(counts)
        assert pd_share["pdc"] > 5 * pd_share["cs1-imperative"]

    def test_unknown_archetype_rejected(self, cs2013):
        with pytest.raises(KeyError):
            sample_course_tags(cs2013, {"nope": 1.0}, seed=0)

    def test_zero_noise_zero_weights_empty(self, cs2013):
        cfg = CorpusConfig(noise_rate=0.0)
        tags = sample_course_tags(cs2013, {"networking": 0.0, "pdc": 1.0},
                                  seed=0, config=cfg)
        # With noise off, all tags come from weighted units.
        pdc = ARCHETYPES["pdc"]
        for t in tags:
            unit = "/".join(t.split("/")[1:3])
            assert pdc.weight(unit) > 0

    def test_noise_adds_offprofile_tags(self, cs2013):
        cfg = CorpusConfig(noise_rate=0.05)
        tags = sample_course_tags(cs2013, {"networking": 1.0}, seed=0, config=cfg)
        net = ARCHETYPES["networking"]
        off = [t for t in tags if net.weight("/".join(t.split("/")[1:3])) == 0]
        assert off  # some idiosyncratic picks


class TestCourseSynthesis:
    def test_materials_cover_exactly_sampled_tags(self, cs2013):
        entry = ROSTER[0]
        course = generate_course(entry, cs2013, seed=0)
        union = frozenset().union(*(m.mappings for m in course.materials))
        assert union == course.tag_set()

    def test_course_has_all_three_roles(self, cs2013):
        course = generate_course(ROSTER[0], cs2013, seed=0)
        roles = {m.role for m in course.materials}
        assert roles == {MaterialRole.DELIVERY, MaterialRole.ACTIVITY,
                         MaterialRole.ASSESSMENT}

    def test_labels_and_names_carried(self, cs2013):
        course = generate_course(ROSTER[0], cs2013, seed=0)
        assert course.labels == ROSTER[0].labels
        assert ROSTER[0].instructor in course.name

    def test_corpus_ids_match_roster(self, cs2013):
        courses = generate_corpus(cs2013, seed=0)
        assert [c.id for c in courses] == [e.id for e in ROSTER]

    def test_corpus_insensitive_to_roster_order(self, cs2013):
        full = generate_corpus(cs2013, seed=0)
        reversed_roster = list(reversed(ROSTER))
        rev = generate_corpus(cs2013, seed=0, roster=reversed_roster)
        by_id_full = {c.id: c.tag_set() for c in full}
        by_id_rev = {c.id: c.tag_set() for c in rev}
        assert by_id_full == by_id_rev

    def test_empty_tagset_course_has_no_exams(self, cs2013):
        cfg = CorpusConfig(noise_rate=0.0)
        entry = RosterEntry("empty", "U", "C", "I", "N", frozenset(),
                            {"networking": 0.0, "pdc": 0.0, "cs2": 1.0})
        # cs2 with weight... use an entry whose units exist; rely on config
        course = generate_course(entry, cs2013, seed=0, config=cfg)
        assert len(course.tag_set()) >= 0  # smoke: no crash


class TestSyntheticRoster:
    def test_size_and_ids(self):
        entries = synthetic_roster(25, seed=0)
        assert len(entries) == 25
        assert len({e.id for e in entries}) == 25

    def test_mixture_validity(self):
        for e in synthetic_roster(50, seed=1):
            assert sum(e.mixture.values()) == pytest.approx(1.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            synthetic_roster(0)

    def test_blends_appear(self):
        entries = synthetic_roster(100, seed=2)
        assert any(len(e.mixture) == 2 for e in entries)
