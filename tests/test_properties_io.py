"""Property-based round-trip tests for the persistence layer."""

import string

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.io.json_io import course_from_dict, course_to_dict
from repro.io.dag_io import taskgraph_from_dict, taskgraph_to_dict
from repro.materials.course import Course, CourseLabel
from repro.materials.material import Material, MaterialType
from repro.taskgraph.dag import TaskGraph

_ident = st.text(alphabet=string.ascii_lowercase + "-", min_size=1, max_size=12)
_tag = st.text(alphabet=string.ascii_lowercase + "/-", min_size=1, max_size=20)


@st.composite
def materials_strategy(draw, prefix: str):
    n = draw(st.integers(0, 5))
    out = []
    for i in range(n):
        out.append(
            Material(
                id=f"{prefix}/m{i}",
                title=draw(_ident),
                mtype=draw(st.sampled_from(list(MaterialType))),
                mappings=frozenset(draw(st.sets(_tag, max_size=6))),
                author=draw(st.one_of(st.just(""), _ident)),
                course_level=draw(st.one_of(st.just(""), _ident)),
                language=draw(st.one_of(st.just(""), _ident)),
                datasets=tuple(draw(st.lists(_ident, max_size=2))),
            )
        )
    return out


@st.composite
def courses_strategy(draw):
    cid = draw(_ident)
    return Course(
        id=cid,
        name=draw(_ident),
        institution=draw(st.one_of(st.just(""), _ident)),
        instructor=draw(st.one_of(st.just(""), _ident)),
        labels=frozenset(draw(st.sets(st.sampled_from(list(CourseLabel)), max_size=3))),
        materials=draw(materials_strategy(cid)),
    )


class TestCourseJsonProperties:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(courses_strategy())
    def test_round_trip_exact(self, course):
        back = course_from_dict(course_to_dict(course))
        assert back.id == course.id
        assert back.name == course.name
        assert back.institution == course.institution
        assert back.instructor == course.instructor
        assert back.labels == course.labels
        assert back.materials == course.materials

    @settings(max_examples=20, deadline=None)
    @given(courses_strategy())
    def test_serialized_form_is_plain_data(self, course):
        import json
        text = json.dumps(course_to_dict(course))
        assert isinstance(text, str)


@st.composite
def dag_strategy(draw):
    n = draw(st.integers(1, 8))
    names = [f"t{i}" for i in range(n)]
    weights = {
        t: draw(st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False))
        for t in names
    }
    edges = []
    for i in range(1, n):
        for j in range(i):
            if draw(st.booleans()):
                edges.append((names[j], names[i]))
    return TaskGraph.from_edges(weights, edges)


class TestDagJsonProperties:
    @settings(max_examples=40, deadline=None)
    @given(dag_strategy())
    def test_round_trip_preserves_structure(self, graph):
        back = taskgraph_from_dict(taskgraph_to_dict(graph))
        assert back.weights == graph.weights
        assert {k: frozenset(v) for k, v in back.successors.items()} == \
            {k: frozenset(v) for k, v in graph.successors.items()}

    @settings(max_examples=25, deadline=None)
    @given(dag_strategy())
    def test_round_trip_preserves_metrics(self, graph):
        back = taskgraph_from_dict(taskgraph_to_dict(graph))
        assert back.work() == graph.work()
        assert back.span() == graph.span()
