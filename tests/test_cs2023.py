"""Tests for the CS2023 beta skeleton and migration."""

import pytest

from repro.curriculum.cs2023 import (
    CS2013_TO_CS2023,
    CS2023_AREAS,
    cs2023_area_profile,
    load_cs2023_skeleton,
    migrate_area_code,
    migration_coverage,
)
from repro.materials.course import Course
from repro.materials.material import Material, MaterialType


class TestSkeleton:
    def test_seventeen_areas(self):
        tree = load_cs2023_skeleton()
        assert len(tree.areas()) == 17
        assert {a.meta["code"] for a in tree.areas()} == {c for c, _ in CS2023_AREAS}

    def test_cached(self):
        assert load_cs2023_skeleton() is load_cs2023_skeleton()

    def test_no_tags_yet(self):
        assert load_cs2023_skeleton().tags() == []


class TestMigrationMap:
    def test_total_coverage(self):
        assert migration_coverage() == 1.0

    def test_every_destination_exists(self):
        codes = {c for c, _ in CS2023_AREAS}
        assert set(CS2013_TO_CS2023.values()) <= codes

    def test_known_renames(self):
        assert migrate_area_code("PD") == "PDC"
        assert migrate_area_code("IAS") == "SEC"
        assert migrate_area_code("IM") == "DM"
        assert migrate_area_code("PL") == "FPL"
        assert migrate_area_code("IS") == "AI"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            migrate_area_code("XYZ")


class TestAreaProfile:
    def test_pdc_course_profile(self, courses):
        pdc = next(c for c in courses if c.id == "uncc-3145-saule")
        prof = cs2023_area_profile(pdc)
        assert prof.most_common(1)[0][0] == "PDC"

    def test_counts_conserved(self, courses, cs2013):
        c = courses[0]
        prof = cs2023_area_profile(c)
        in_tree = sum(1 for t in c.tag_set() if t in cs2013)
        assert sum(prof.values()) == in_tree

    def test_non_cs2013_tags_ignored(self):
        c = Course("c", "C", materials=[
            Material("c/m", "m", MaterialType.LECTURE,
                     frozenset({"PDC12/ALGO/MODELS/t-amdahl-s-law"})),
        ])
        assert cs2023_area_profile(c) == {}
