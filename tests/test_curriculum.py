"""Tests for the CS2013 / PDC12 curriculum data and the crosswalk."""

import pytest

from repro.curriculum import load_crosswalk, load_cs2013, load_pdc12
from repro.curriculum.cs2013 import AREA_CODES
from repro.ontology.node import Bloom, Mastery, NodeKind, Tier


class TestCS2013:
    def test_cached_singleton(self):
        assert load_cs2013() is load_cs2013()

    def test_eighteen_knowledge_areas(self, cs2013):
        areas = cs2013.areas()
        assert len(areas) == 18
        codes = {a.meta["code"] for a in areas}
        assert {"SDF", "AL", "DS", "PL", "AR", "OS", "SF", "PD", "NC",
                "SE", "IAS", "IM", "CN", "GV", "HCI", "IS", "SP", "PBD"} == codes
        assert codes == set(AREA_CODES)

    def test_structure_depths(self, cs2013):
        # areas at 1, units at 2, tags at 3.
        for area in cs2013.areas():
            assert cs2013.depth(area.id) == 1
        for tag in cs2013.tags():
            assert cs2013.depth(tag.id) == 3

    def test_validates(self, cs2013):
        cs2013.validate()

    def test_sdf_units(self, cs2013):
        sdf_units = [u.meta["code"] for u in cs2013.children("CS2013/SDF")]
        assert sdf_units == ["AD", "FPC", "FDS", "DM"]

    def test_sdf_is_all_core1(self, cs2013):
        for unit in cs2013.children("CS2013/SDF"):
            assert unit.tier is Tier.CORE1

    def test_fpc_has_recursion_topic(self, cs2013):
        hits = cs2013.find_by_label("The concept of recursion")
        assert len(hits) == 1
        assert hits[0].kind is NodeKind.TOPIC
        assert hits[0].id.startswith("CS2013/SDF/FPC/")

    def test_outcomes_carry_mastery(self, cs2013):
        outcomes = [n for n in cs2013.tags() if n.kind is NodeKind.OUTCOME]
        assert outcomes
        assert all(o.mastery in (Mastery.FAMILIARITY, Mastery.USAGE,
                                 Mastery.ASSESSMENT) for o in outcomes)

    def test_all_three_tiers_present(self, cs2013):
        tiers = {t.tier for t in cs2013.tags()}
        assert {Tier.CORE1, Tier.CORE2, Tier.ELECTIVE} <= tiers

    def test_substantial_tag_count(self, cs2013):
        # The paper's analysis space: hundreds of classifiable entries.
        assert len(cs2013.tags()) > 500

    def test_pd_area_has_parallelism_fundamentals(self, cs2013):
        pd_units = {u.meta["code"] for u in cs2013.children("CS2013/PD")}
        assert {"PF", "PDCMP", "CC", "PAAP", "PARCH"} <= pd_units

    def test_tag_ids_unique(self, cs2013):
        ids = cs2013.tag_ids()
        assert len(ids) == len(set(ids))


class TestPDC12:
    def test_four_areas(self, pdc12):
        codes = [a.meta["code"] for a in pdc12.areas()]
        assert codes == ["ARCH", "PROG", "ALGO", "XCUT"]

    def test_topics_only_no_outcomes(self, pdc12):
        # PDC12 presents learning outcomes inside topic text (§2.1).
        assert all(n.kind is not NodeKind.OUTCOME for n in pdc12.tags())

    def test_bloom_levels_present(self, pdc12):
        blooms = {t.bloom for t in pdc12.tags()}
        assert blooms == {Bloom.KNOW, Bloom.COMPREHEND, Bloom.APPLY}

    def test_two_tier_scheme(self, pdc12):
        tiers = {t.tier for t in pdc12.tags()}
        assert tiers == {Tier.CORE1, Tier.ELECTIVE}

    def test_core_topics_exist_in_each_area(self, pdc12):
        for area in pdc12.areas():
            tags = [
                pdc12[t] for t in pdc12.descendant_ids(area.id) if pdc12[t].is_tag
            ]
            assert any(t.tier is Tier.CORE1 for t in tags), area.id

    def test_amdahl_present(self, pdc12):
        assert any(n.label == "Amdahl's law" for n in pdc12.tags())

    def test_validates(self, pdc12):
        pdc12.validate()


class TestCrosswalk:
    def test_loads_and_caches(self):
        assert load_crosswalk() is load_crosswalk()

    def test_all_sources_are_pdc_tags(self, pdc12):
        xw = load_crosswalk()
        for pdc_id in xw.pdc_to_cs:
            assert pdc_id in pdc12 and pdc12[pdc_id].is_tag

    def test_all_targets_are_cs_tags(self, cs2013):
        xw = load_crosswalk()
        for targets in xw.pdc_to_cs.values():
            for cs_id in targets:
                assert cs_id in cs2013 and cs2013[cs_id].is_tag

    def test_reverse_mapping_consistent(self):
        xw = load_crosswalk()
        rev = xw.cs_to_pdc
        for pdc_id, cs_ids in xw.pdc_to_cs.items():
            for cs_id in cs_ids:
                assert pdc_id in rev[cs_id]

    def test_amdahl_link(self, pdc12, cs2013):
        xw = load_crosswalk()
        (amdahl_pdc,) = [n.id for n in pdc12.tags() if n.label == "Amdahl's law"]
        anchors = xw.cs2013_anchors_for(amdahl_pdc)
        assert anchors
        labels = {cs2013[a].label for a in anchors}
        assert "Amdahl's law" in labels

    def test_unmapped_returns_empty(self):
        xw = load_crosswalk()
        assert xw.cs2013_anchors_for("PDC12/nothing") == ()
        assert xw.pdc12_topics_for("CS2013/nothing") == ()
