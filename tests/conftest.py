"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.canonical import load_canonical_dataset
from repro.curriculum import load_cs2013, load_pdc12
from repro.materials.course import CourseLabel
from repro.ontology.builder import TreeBuilder
from repro.ontology.node import Mastery, Tier


@pytest.fixture(scope="session")
def cs2013():
    return load_cs2013()


@pytest.fixture(scope="session")
def pdc12():
    return load_pdc12()


@pytest.fixture(scope="session")
def dataset():
    return load_canonical_dataset()


@pytest.fixture(scope="session")
def courses(dataset):
    return dataset[1]


@pytest.fixture(scope="session")
def matrix(dataset):
    return dataset[2]


@pytest.fixture(scope="session")
def cs1_courses(courses):
    return [c for c in courses if CourseLabel.CS1 in c.labels]


@pytest.fixture()
def small_tree():
    """A tiny guideline tree for structural tests.

    Root -> two areas (A, B); A has two units, B one; tags under each unit.
    """
    b = TreeBuilder("G", "Tiny guideline")
    a = b.area("A", "Area A")
    u1 = b.unit(a, "U1", "Unit one", tier=Tier.CORE1)
    b.topic(u1, "Topic alpha", tier=Tier.CORE1)
    b.topic(u1, "Topic beta", tier=Tier.CORE2)
    b.outcome(u1, "Do alpha things", mastery=Mastery.USAGE, tier=Tier.CORE1)
    u2 = b.unit(a, "U2", "Unit two", tier=Tier.CORE2)
    b.topic(u2, "Topic gamma", tier=Tier.CORE2)
    area_b = b.area("B", "Area B")
    u3 = b.unit(area_b, "U3", "Unit three", tier=Tier.ELECTIVE)
    b.topic(u3, "Topic delta", tier=Tier.ELECTIVE)
    b.outcome(u3, "Do delta things", mastery=Mastery.FAMILIARITY, tier=Tier.ELECTIVE)
    return b.build()


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
