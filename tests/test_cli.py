"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def corpus_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "courses.json"
    assert main(["canonical", "--out", str(path)]) == 0
    return path


class TestCanonicalAndGenerate:
    def test_canonical_writes(self, corpus_file):
        assert corpus_file.exists()
        assert corpus_file.stat().st_size > 10_000

    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        assert main(["generate", "--seed", "3", "--out", str(out)]) == 0
        assert "20 courses" in capsys.readouterr().out

    def test_generate_with_excluded(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        assert main(["generate", "--seed", "3", "--out", str(out),
                     "--include-excluded"]) == 0
        assert "31 courses" in capsys.readouterr().out


class TestAgreement:
    def test_cs1(self, corpus_file, capsys):
        assert main(["agreement", str(corpus_file), "--label", "CS1"]) == 0
        out = capsys.readouterr().out
        assert "6 courses" in out
        assert ">= 4" in out

    def test_weighted(self, corpus_file, capsys):
        assert main(["agreement", str(corpus_file), "--label", "DS",
                     "--weighted"]) == 0
        assert "5 courses" in capsys.readouterr().out

    def test_unknown_label(self, corpus_file):
        with pytest.raises(SystemExit):
            main(["agreement", str(corpus_file), "--label", "BOGUS"])


class TestTypesAndFlavors:
    def test_types(self, corpus_file, capsys):
        assert main(["types", str(corpus_file), "-k", "4", "--seed", "6"]) == 0
        out = capsys.readouterr().out
        assert "dimension" in out
        assert "reconstruction error" in out

    def test_flavors(self, corpus_file, capsys):
        assert main(["flavors", str(corpus_file), "--label", "CS1",
                     "-k", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Type 1" in out and "washu-131-singh" in out


class TestMatrixRecommendHitTree:
    def test_matrix_csv(self, corpus_file, tmp_path, capsys):
        out = tmp_path / "m.csv"
        assert main(["matrix", str(corpus_file), "--out", str(out)]) == 0
        assert out.exists()
        header = out.read_text().splitlines()[0]
        assert header.startswith("course_id,")

    def test_recommend(self, corpus_file, capsys):
        assert main(["recommend", str(corpus_file),
                     "--course-id", "washu-131-singh",
                     "--flavor", "cs1-oop", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "module" in out

    def test_recommend_unknown_course(self, corpus_file):
        with pytest.raises(SystemExit):
            main(["recommend", str(corpus_file), "--course-id", "ghost"])

    def test_hit_tree_svg(self, corpus_file, tmp_path):
        out = tmp_path / "t.svg"
        assert main(["hit-tree", str(corpus_file),
                     "--course-id", "ccc-40-kerney", "--out", str(out)]) == 0
        assert out.read_text().startswith("<svg")

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestGapAndDeps:
    def test_pdc_gap(self, corpus_file, capsys):
        assert main(["pdc-gap", str(corpus_file)]) == 0
        out = capsys.readouterr().out
        assert "PD-area gap" in out
        assert "core-1 coverage" in out

    def test_pdc_gap_all_tiers_larger(self, corpus_file, capsys):
        main(["pdc-gap", str(corpus_file)])
        core_out = capsys.readouterr().out
        main(["pdc-gap", str(corpus_file), "--all-tiers"])
        all_out = capsys.readouterr().out

        def gap_count(text):
            line = next(l for l in text.splitlines() if "PD-area gap" in l)
            return int(line.split(":")[1].split()[0])

        assert gap_count(all_out) >= gap_count(core_out)

    def test_deps(self, corpus_file, capsys):
        assert main(["deps", str(corpus_file),
                     "--course-id", "uncc-2214-krs"]) == 0
        out = capsys.readouterr().out
        assert "longest prerequisite chain" in out
        assert "foundational topics" in out

    def test_deps_unknown_course(self, corpus_file):
        with pytest.raises(SystemExit):
            main(["deps", str(corpus_file), "--course-id", "ghost"])


class TestCompareAndMaterials:
    def test_compare(self, corpus_file, capsys):
        assert main(["compare", str(corpus_file),
                     "uncc-2214-krs", "uncc-2214-saule"]) == 0
        out = capsys.readouterr().out
        assert "shared tags" in out and "Jaccard" in out

    def test_compare_unknown_course(self, corpus_file):
        with pytest.raises(SystemExit):
            main(["compare", str(corpus_file), "ghost", "uncc-2214-krs"])

    def test_materials(self, corpus_file, capsys):
        assert main(["materials", str(corpus_file),
                     "--course-id", "uncc-2214-krs", "--top", "4"]) == 0
        out = capsys.readouterr().out
        assert "new PDC topics" in out
        # 4 rows + header + separator
        assert len(out.strip().splitlines()) == 6

    def test_materials_unknown_course(self, corpus_file):
        with pytest.raises(SystemExit):
            main(["materials", str(corpus_file), "--course-id", "ghost"])


class TestScheduleCli:
    @pytest.fixture()
    def dag_file(self, tmp_path):
        from repro.io.dag_io import save_taskgraph
        from repro.taskgraph import layered_random_dag
        path = tmp_path / "dag.json"
        save_taskgraph(layered_random_dag(4, 4, seed=1), path)
        return path

    def test_schedule(self, dag_file, capsys):
        assert main(["schedule", str(dag_file), "-p", "3"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "speedup" in out

    def test_schedule_gantt(self, dag_file, capsys):
        assert main(["schedule", str(dag_file), "-p", "2", "--gantt"]) == 0
        assert "P0" in capsys.readouterr().out

    def test_schedule_comm_delay_slower(self, dag_file, capsys):
        main(["schedule", str(dag_file), "-p", "4"])
        base = capsys.readouterr().out
        main(["schedule", str(dag_file), "-p", "4", "--comm-delay", "10"])
        comm = capsys.readouterr().out

        def makespan(text):
            line = next(l for l in text.splitlines() if "makespan" in l)
            return float(line.split(":")[1].split()[0])

        assert makespan(comm) >= makespan(base)


class TestMapCli:
    def test_map(self, corpus_file, capsys):
        assert main(["map", str(corpus_file), "--width", "40",
                     "--height", "8"]) == 0
        out = capsys.readouterr().out
        assert "MDS stress" in out
        assert out.startswith("+")


class TestSearchCli:
    def test_search_by_type(self, corpus_file, capsys):
        assert main(["search", str(corpus_file), "--type", "lecture",
                     "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "material" in out and "score" in out
        assert "5 hit(s)" in out

    def test_search_by_internal_node_tag(self, corpus_file, capsys):
        # An area id expands to every tag beneath it.
        assert main(["search", str(corpus_file), "--tag", "CS2013/SDF"]) == 0
        out = capsys.readouterr().out
        assert "10 hit(s)" in out

    def test_search_no_hits(self, corpus_file, capsys):
        assert main(["search", str(corpus_file), "--text", "zzz-nope"]) == 0
        assert "0 hit(s)" in capsys.readouterr().out

    def test_search_negative_limit_rejected(self, corpus_file):
        with pytest.raises(SystemExit):
            main(["search", str(corpus_file), "--limit", "-1"])

    def test_similar(self, corpus_file, capsys):
        from repro.io import load_courses

        mid = load_courses(str(corpus_file))[0].materials[0].id
        assert main(["similar", str(corpus_file), "--material-id", mid,
                     "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert mid not in out.splitlines()[0]  # header row
        assert len(out.splitlines()) == 5  # header + rule + 3 hits

    def test_similar_zero_limit_rejected(self, corpus_file):
        with pytest.raises(SystemExit):
            main(["similar", str(corpus_file), "--material-id", "x",
                  "--limit", "0"])

    def test_similar_unknown_material(self, corpus_file):
        with pytest.raises(SystemExit, match="no material"):
            main(["similar", str(corpus_file), "--material-id", "nope"])
