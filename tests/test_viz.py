"""Tests for the visualization package."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.materials.hittree import HitTree, build_hit_tree
from repro.materials.material import Material, MaterialType
from repro.viz.ascii import ascii_bars, ascii_heatmap, ascii_histogram, ascii_matrix
from repro.viz.color import diverging_color, hex_color, sequential_color
from repro.viz.radial import _circular_mean, radial_layout
from repro.viz.svg import SvgCanvas, render_heatmap_svg, render_radial_svg


class TestAsciiHeatmap:
    def test_row_count(self):
        out = ascii_heatmap(np.random.default_rng(0).random((3, 4)))
        assert len(out.splitlines()) == 3

    def test_labels_included(self):
        out = ascii_heatmap(np.ones((2, 2)), ["row-a", "row-b"], ["c1", "c2"])
        assert "row-a" in out and "c1" in out
        assert len(out.splitlines()) == 3

    def test_zero_matrix_renders_blank_glyphs(self):
        out = ascii_heatmap(np.zeros((2, 3)))
        assert set(out.replace("\n", "")) <= {" "}

    def test_max_value_uses_darkest_glyph(self):
        out = ascii_heatmap(np.array([[0.0, 1.0]]))
        assert "@" in out

    def test_row_normalization(self):
        m = np.array([[1.0, 0.5], [100.0, 50.0]])
        rows = ascii_heatmap(m, normalize="row").splitlines()
        # Identical patterns per row when normalized by row.
        assert rows[0] == rows[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(3))
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((2, 2)), row_labels=["only-one"])
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((2, 2)), normalize="wat")


class TestAsciiHistogram:
    def test_empty(self):
        assert "(empty)" in ascii_histogram([])

    def test_reports_stats(self):
        out = ascii_histogram([5, 4, 3, 1], label="x ")
        assert "n=4" in out and "max=5" in out and out.startswith("x ")

    def test_width_respected(self):
        out = ascii_histogram(list(range(200, 0, -1)), width=30)
        strip = out.split("  ")[0]
        assert len(strip) <= 31

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=100))
    def test_never_crashes(self, values):
        assert ascii_histogram(values)


class TestAsciiBarsMatrix:
    def test_bars(self):
        out = ascii_bars([("SDF", 10.0), ("AL", 5.0)])
        lines = out.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_bars_empty(self):
        assert ascii_bars([]) == "(empty)"

    def test_matrix(self):
        out = ascii_matrix(np.array([[1, 0], [0, 1]]))
        assert out == "x.\n.x"

    def test_matrix_validation(self):
        with pytest.raises(ValueError):
            ascii_matrix(np.zeros(3))


class TestColors:
    def test_diverging_endpoints(self):
        lo, mid, hi = diverging_color(-1), diverging_color(0), diverging_color(1)
        assert lo != mid != hi
        assert lo[2] > lo[0]   # negative side is blue
        assert hi[0] > hi[2]   # positive side is red

    def test_diverging_clamps(self):
        assert diverging_color(-5) == diverging_color(-1)
        assert diverging_color(5) == diverging_color(1)

    def test_sequential_monotone_darkness(self):
        vals = [sum(sequential_color(v)) for v in (0.0, 0.5, 1.0)]
        assert vals[0] > vals[1] > vals[2]

    def test_hex(self):
        assert hex_color((255, 0, 16)) == "#ff0010"
        with pytest.raises(ValueError):
            hex_color((300, 0, 0))

    @given(st.floats(-1, 1, allow_nan=False))
    def test_diverging_valid_rgb(self, v):
        rgb = diverging_color(v)
        assert all(0 <= c <= 255 for c in rgb)


class TestRadialLayout:
    def test_reference_nodes_on_same_ring(self, small_tree):
        layout = radial_layout(small_tree, ring_radius=50.0)
        ref = layout.reference_level
        radii = [
            math.hypot(*layout.positions[nid])
            for nid in small_tree.iter_preorder_ids()
            if small_tree.depth(nid) == ref
        ]
        for r in radii:
            assert r == pytest.approx(ref * 50.0, abs=1e-6)

    def test_reference_angles_uniform(self, small_tree):
        layout = radial_layout(small_tree)
        ref_ids = [
            nid for nid in small_tree.iter_preorder_ids()
            if small_tree.depth(nid) == layout.reference_level
        ]
        angles = sorted(layout.angles[nid] for nid in ref_ids)
        diffs = {round(b - a, 9) for a, b in zip(angles, angles[1:])}
        assert len(diffs) == 1  # uniform spacing

    def test_root_at_origin(self, small_tree):
        layout = radial_layout(small_tree)
        assert layout.positions[small_tree.root_id] == (0.0, 0.0)

    def test_all_nodes_positioned(self, cs2013):
        layout = radial_layout(cs2013)
        assert set(layout.positions) == set(cs2013.node_ids())

    def test_circular_mean_wraps(self):
        m = _circular_mean([2 * math.pi - 0.1, 0.1])
        assert m == pytest.approx(0.0, abs=1e-9) or m == pytest.approx(2 * math.pi, abs=1e-9)


class TestSvg:
    def test_canvas_document(self):
        c = SvgCanvas(100, 50)
        c.line(0, 0, 10, 10)
        c.circle(5, 5, 2)
        c.rect(1, 1, 3, 3)
        c.text(0, 10, "hi <&>")
        s = c.to_string()
        assert s.startswith("<svg") and s.rstrip().endswith("</svg>")
        assert "&lt;" in s and "&amp;" in s  # escaping

    def test_canvas_validation(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 10)

    def test_radial_svg_well_formed(self, small_tree):
        mats = [Material("m", "m", MaterialType.LECTURE,
                         frozenset({"G/A/U1/t-topic-alpha"}))]
        ht = build_hit_tree(mats, small_tree)
        svg = render_radial_svg(ht)
        import xml.etree.ElementTree as ET
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        assert len(circles) == len(ht.tree)

    def test_radial_svg_root_red(self, small_tree):
        mats = [Material("m", "m", MaterialType.LECTURE,
                         frozenset({"G/A/U1/t-topic-alpha"}))]
        svg = render_radial_svg(build_hit_tree(mats, small_tree))
        assert "#d62728" in svg  # the paper's red root

    def test_heatmap_svg_cells(self):
        svg = render_heatmap_svg(np.random.default_rng(0).random((3, 5)), ["a", "b", "c"])
        assert svg.count("<rect") == 15
        assert svg.count("<text") == 3

    def test_heatmap_validation(self):
        with pytest.raises(ValueError):
            render_heatmap_svg(np.zeros(4))
        with pytest.raises(ValueError):
            render_heatmap_svg(np.zeros((2, 2)), normalize="wat")


class TestRadiusOf:
    def test_radius_scales_with_depth(self, small_tree):
        layout = radial_layout(small_tree, ring_radius=40.0)
        assert layout.radius_of(small_tree.root_id) == 0.0
        assert layout.radius_of("G/A") == 40.0
        assert layout.radius_of("G/A/U1") == 80.0
