"""Tests for JSON course serialization and CSV matrix export."""

import json

import numpy as np
import pytest

from repro.analysis.matrix import build_course_matrix
from repro.io import (
    course_from_dict,
    course_to_dict,
    load_courses,
    load_matrix_csv,
    material_from_dict,
    material_to_dict,
    save_courses,
    save_matrix_csv,
)
from repro.materials.course import Course, CourseLabel
from repro.materials.material import Material, MaterialType


@pytest.fixture()
def sample_course():
    return Course(
        "c1", "Course One", institution="U", instructor="I",
        labels=frozenset({CourseLabel.CS1, CourseLabel.DS}),
        materials=[
            Material("c1/m1", "Lecture", MaterialType.LECTURE,
                     frozenset({"t/a", "t/b"}), author="X", language="C",
                     datasets=("quakes",), description="desc", url="http://x"),
            Material("c1/m2", "Exam", MaterialType.EXAM, frozenset({"t/b"})),
        ],
    )


class TestMaterialRoundTrip:
    def test_round_trip_full(self, sample_course):
        m = sample_course.materials[0]
        back = material_from_dict(material_to_dict(m))
        assert back == m

    def test_round_trip_minimal(self):
        m = Material("m", "t", MaterialType.LAB)
        assert material_from_dict(material_to_dict(m)) == m

    def test_empty_fields_omitted(self):
        d = material_to_dict(Material("m", "t", MaterialType.LAB))
        assert "author" not in d and "datasets" not in d

    def test_mappings_sorted_for_stable_diffs(self, sample_course):
        d = material_to_dict(sample_course.materials[0])
        assert d["mappings"] == sorted(d["mappings"])


class TestCourseRoundTrip:
    def test_round_trip(self, sample_course):
        back = course_from_dict(course_to_dict(sample_course))
        assert back.id == sample_course.id
        assert back.labels == sample_course.labels
        assert back.materials == sample_course.materials

    def test_file_round_trip(self, sample_course, tmp_path):
        path = tmp_path / "courses.json"
        save_courses([sample_course], path)
        loaded = load_courses(path)
        assert len(loaded) == 1
        assert loaded[0].tag_set() == sample_course.tag_set()

    def test_file_is_valid_json(self, sample_course, tmp_path):
        path = tmp_path / "c.json"
        save_courses([sample_course], path)
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-courses"

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a repro course file"):
            load_courses(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-courses", "version": 999}')
        with pytest.raises(ValueError, match="version"):
            load_courses(path)

    def test_canonical_corpus_round_trips(self, courses, tmp_path):
        path = tmp_path / "canonical.json"
        save_courses(list(courses), path)
        loaded = load_courses(path)
        assert [c.id for c in loaded] == [c.id for c in courses]
        for a, b in zip(loaded, courses):
            assert a.tag_set() == b.tag_set()
            assert len(a.materials) == len(b.materials)


class TestMatrixCsv:
    def test_round_trip(self, courses, tmp_path):
        matrix = build_course_matrix(list(courses)[:5])
        path = tmp_path / "m.csv"
        save_matrix_csv(matrix, path)
        back = load_matrix_csv(path)
        assert back.course_ids == matrix.course_ids
        assert back.tag_ids == matrix.tag_ids
        np.testing.assert_array_equal(back.matrix, matrix.matrix)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_matrix_csv(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "b.csv"
        path.write_text("nope,t1\nx,1\n")
        with pytest.raises(ValueError, match="course_id"):
            load_matrix_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("course_id,t1,t2\nc1,1\n")
        with pytest.raises(ValueError, match="expected 3 fields"):
            load_matrix_csv(path)


class TestTaskGraphIO:
    def test_round_trip(self, tmp_path):
        from repro.io.dag_io import load_taskgraph, save_taskgraph
        from repro.taskgraph import layered_random_dag
        g = layered_random_dag(4, 5, seed=2)
        path = tmp_path / "dag.json"
        save_taskgraph(g, path)
        back = load_taskgraph(path)
        assert back.weights == g.weights
        assert {k: tuple(sorted(v)) for k, v in back.successors.items()} == \
            {k: tuple(sorted(v)) for k, v in g.successors.items()}

    def test_bad_format_rejected(self):
        from repro.io.dag_io import taskgraph_from_dict
        with pytest.raises(ValueError, match="not a repro task-graph"):
            taskgraph_from_dict({"format": "nope"})
        with pytest.raises(ValueError, match="version"):
            taskgraph_from_dict({"format": "repro-taskgraph", "version": 9})

    def test_bad_edge_rejected(self):
        from repro.io.dag_io import taskgraph_from_dict
        with pytest.raises(ValueError, match="pair"):
            taskgraph_from_dict({
                "format": "repro-taskgraph", "version": 1,
                "tasks": {"a": 1.0}, "edges": [["a"]],
            })

    def test_cycle_rejected_on_load(self):
        from repro.io.dag_io import taskgraph_from_dict
        with pytest.raises(ValueError, match="cycle"):
            taskgraph_from_dict({
                "format": "repro-taskgraph", "version": 1,
                "tasks": {"a": 1.0, "b": 1.0},
                "edges": [["a", "b"], ["b", "a"]],
            })
