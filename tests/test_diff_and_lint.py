"""Tests for the tree diff and the corpus linter."""

import pytest

from repro.curriculum.pdc12 import load_pdc12
from repro.curriculum.pdc12_beta import load_pdc12_beta, version_diff
from repro.materials.course import Course
from repro.materials.lint import Severity, has_errors, lint_corpus
from repro.materials.material import Material, MaterialType
from repro.ontology.builder import TreeBuilder
from repro.ontology.diff import diff_trees


class TestTreeDiff:
    def test_identical_trees_empty_diff(self, small_tree):
        d = diff_trees(small_tree, small_tree)
        assert d.is_empty
        assert d.n_changes == 0

    def test_pdc12_beta_is_pure_addition(self):
        d = diff_trees(load_pdc12(), load_pdc12_beta())
        assert not d.removed
        assert not d.relabeled
        # 5 new units + their topics (matches the delta report).
        n_units = sum(1 for p in d.added if p.count("/") == 1)
        assert n_units == 5
        assert len(d.added) - n_units == version_diff().n_added_topics

    def test_reversed_diff_swaps_added_removed(self):
        d = diff_trees(load_pdc12_beta(), load_pdc12())
        assert not d.added
        assert len(d.removed) == len(diff_trees(load_pdc12(), load_pdc12_beta()).added)

    def test_relabel_detected(self):
        def build(label):
            b = TreeBuilder("V", "v")
            a = b.area("A", label)
            b.unit(a, "U", "unit")
            return b.build()

        d = diff_trees(build("Old name"), build("New name"))
        assert d.relabeled == (("A", "Old name", "New name"),)
        assert not d.added and not d.removed


def mk(cid, materials):
    return Course(cid, cid, materials=materials)


class TestLint:
    def test_clean_canonical_corpus(self, courses, cs2013, pdc12):
        issues = lint_corpus(list(courses), [cs2013, pdc12])
        assert not has_errors(issues)

    def test_empty_course(self, cs2013):
        issues = lint_corpus([mk("c", [])], [cs2013])
        assert any(i.code == "empty-course" for i in issues)
        assert has_errors(issues)

    def test_no_mappings(self, cs2013):
        c = mk("c", [Material("c/m", "m", MaterialType.LECTURE, frozenset())])
        issues = lint_corpus([c], [cs2013])
        codes = {i.code for i in issues}
        assert "no-mappings" in codes
        assert "unmapped-material" in codes

    def test_unknown_tag(self, cs2013):
        c = mk("c", [Material("c/m", "m", MaterialType.EXAM,
                              frozenset({"NOT/A/TAG"}))])
        issues = lint_corpus([c], [cs2013])
        assert any(i.code == "unknown-tag" for i in issues)
        assert has_errors(issues)

    def test_unknown_tag_capped(self, cs2013):
        tags = frozenset(f"GHOST/{i}" for i in range(12))
        c = mk("c", [Material("c/m", "m", MaterialType.EXAM, tags)])
        issues = [i for i in lint_corpus([c], [cs2013]) if i.code == "unknown-tag"]
        assert len(issues) == 6  # 5 listed + 1 "... and N more"
        assert "more" in issues[-1].message

    def test_tag_known_in_second_tree_ok(self, cs2013, pdc12):
        tag = pdc12.tag_ids()[0]
        c = mk("c", [
            Material("c/m", "m", MaterialType.EXAM, frozenset({tag})),
        ])
        issues = lint_corpus([c], [cs2013, pdc12])
        assert not any(i.code == "unknown-tag" for i in issues)

    def test_duplicate_title_warning(self, cs2013):
        tag = cs2013.tag_ids()[0]
        c = mk("c", [
            Material("c/m1", "Week 1", MaterialType.LECTURE, frozenset({tag})),
            Material("c/m2", "Week 1", MaterialType.EXAM, frozenset({tag})),
        ])
        issues = lint_corpus([c], [cs2013])
        assert any(i.code == "duplicate-title" for i in issues)
        assert not has_errors(issues)

    def test_no_assessment_warning(self, cs2013):
        tag = cs2013.tag_ids()[0]
        c = mk("c", [Material("c/m", "m", MaterialType.LECTURE, frozenset({tag}))])
        issues = lint_corpus([c], [cs2013])
        assert any(i.code == "no-assessment" for i in issues)

    def test_str_rendering(self, cs2013):
        issues = lint_corpus([mk("c", [])], [cs2013])
        assert str(issues[0]).startswith("[error] c:")


class TestLintCli:
    def test_lint_clean_corpus_exit_zero(self, tmp_path, capsys):
        from repro.cli import main
        corpus = tmp_path / "c.json"
        main(["canonical", "--out", str(corpus)])
        capsys.readouterr()
        assert main(["lint", str(corpus)]) == 0
        assert "0 error(s)" in capsys.readouterr().out
