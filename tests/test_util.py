"""Tests for repro.util: rng plumbing, tables, validation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import as_rng, spawn_child
from repro.util.tables import format_kv, format_table
from repro.util.validation import (
    check_finite,
    check_matrix,
    check_nonnegative,
    check_positive_int,
    check_probability,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert as_rng(7).random() == as_rng(7).random()

    def test_different_seeds_differ(self):
        assert as_rng(1).random() != as_rng(2).random()

    def test_generator_passthrough_shares_state(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(42)
        assert isinstance(as_rng(ss), np.random.Generator)


class TestSpawnChild:
    def test_children_are_independent_of_draw_count(self):
        # Consuming draws from one child must not perturb a sibling.
        parent_a = as_rng(5)
        kids_a = spawn_child(parent_a, n=2)
        _ = kids_a[0].random(100)
        val_a = kids_a[1].random()

        parent_b = as_rng(5)
        kids_b = spawn_child(parent_b, n=2)
        val_b = kids_b[1].random()
        assert val_a == val_b

    def test_children_differ_from_each_other(self):
        kids = spawn_child(as_rng(0), n=3)
        vals = {k.random() for k in kids}
        assert len(vals) == 3

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            spawn_child(as_rng(0), n=0)

    def test_successive_calls_yield_fresh_children(self):
        # Generator.spawn advances the parent's spawn counter, so two
        # batches from the same parent must not repeat each other.
        parent = as_rng(11)
        first = spawn_child(parent, n=2)
        second = spawn_child(parent, n=2)
        assert first[0].random() != second[0].random()

    @staticmethod
    def _raw_bitgen_rng():
        # A Generator wrapped around a raw legacy BitGenerator has
        # bit_generator.seed_seq None and Generator.spawn raises.
        return np.random.Generator(np.random.RandomState(123)._bit_generator)

    def test_raw_bitgenerator_does_not_crash(self):
        # Regression: this used to raise AttributeError on seed_seq.spawn.
        kids = spawn_child(self._raw_bitgen_rng(), n=3)
        assert len(kids) == 3
        assert all(isinstance(k, np.random.Generator) for k in kids)

    def test_raw_bitgenerator_fallback_is_deterministic(self):
        vals_a = [k.random() for k in spawn_child(self._raw_bitgen_rng(), n=3)]
        vals_b = [k.random() for k in spawn_child(self._raw_bitgen_rng(), n=3)]
        assert vals_a == vals_b
        assert len(set(vals_a)) == 3  # children differ from each other


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == ""

    def test_alignment_and_header(self):
        out = format_table([("a", 1), ("bbb", 22)], header=["name", "v"])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert lines[2].index("1") == lines[3].index("2")

    def test_right_alignment(self):
        out = format_table([("x", 1), ("y", 100)], align_right=[False, True])
        lines = out.splitlines()
        assert lines[0].endswith("1")
        assert lines[1].endswith("100")

    def test_ragged_rows_padded(self):
        out = format_table([("a",), ("b", "c")])
        assert len(out.splitlines()) == 2

    @given(st.lists(
        st.tuples(
            st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=5),
            st.integers(),
        ),
        max_size=8,
    ))
    def test_row_count_preserved(self, rows):
        out = format_table(rows)
        expected = len(rows) if rows else 0
        assert len(out.splitlines()) == expected

    def test_format_kv(self):
        out = format_kv([("alpha", 1), ("b", 2)])
        lines = out.splitlines()
        assert lines[0].startswith("alpha")
        assert ":" in lines[1]

    def test_format_kv_empty(self):
        assert format_kv([]) == ""


class TestValidation:
    def test_positive_int_ok(self):
        assert check_positive_int(3, "n") == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_positive_int_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            check_positive_int(bad, "n")

    @pytest.mark.parametrize("bad", [1.5, "3", True])
    def test_positive_int_rejects_wrong_type(self, bad):
        with pytest.raises(TypeError):
            check_positive_int(bad, "n")

    def test_positive_int_rejects_bool_despite_int_subclass(self):
        # bool is a subclass of int; True would otherwise pass as 1.
        with pytest.raises(TypeError):
            check_positive_int(True, "n")

    @pytest.mark.parametrize("np_int", [np.int32(5), np.int64(2), np.uint8(1)])
    def test_positive_int_accepts_numpy_integers(self, np_int):
        out = check_positive_int(np_int, "n")
        assert out == int(np_int) and type(out) is int

    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.01, "p")
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")

    def test_probability_rejects_nan(self):
        with pytest.raises(ValueError):
            check_probability(float("nan"), "p")

    @pytest.mark.parametrize("bad", [np.nextafter(0.0, -1.0), np.nextafter(1.0, 2.0)])
    def test_probability_rejects_open_endpoint_neighbours(self, bad):
        # The values closest to [0, 1] from outside must still be rejected.
        with pytest.raises(ValueError):
            check_probability(bad, "p")

    def test_check_matrix_coerces(self):
        m = check_matrix([[1, 2], [3, 4]])
        assert m.dtype == float and m.shape == (2, 2)

    def test_check_matrix_rejects_1d(self):
        with pytest.raises(ValueError):
            check_matrix(np.zeros(3))

    def test_check_matrix_rejects_3d_with_shape_in_message(self):
        with pytest.raises(ValueError, match=r"2-D.*\(2, 2, 2\)"):
            check_matrix(np.zeros((2, 2, 2)), name="X")

    def test_check_nonnegative(self):
        check_nonnegative(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            check_nonnegative(np.array([[-1.0]]))

    def test_check_finite(self):
        check_finite(np.ones((2, 2)))
        with pytest.raises(ValueError):
            check_finite(np.array([[np.nan]]))
        with pytest.raises(ValueError):
            check_finite(np.array([[np.inf]]))
