"""Integration tests pinning the paper's findings on the canonical dataset.

These are the headline results: if any of them breaks, the reproduction no
longer tells the paper's story.  Each test names the section/figure it
guards.
"""

import numpy as np
import pytest

from repro.analysis import agreement, analyze_flavors, type_courses
from repro.canonical import (
    CANONICAL_CORPUS_SEED,
    FIG2_NMF_SEED,
    FIG5_NMF_SEED,
    FIG7_NMF_SEED,
    load_canonical_dataset,
)
from repro.materials.course import CourseLabel
from repro.ontology.queries import area_of


@pytest.fixture(scope="module")
def data():
    return load_canonical_dataset()


class TestDatasetShape:
    def test_twenty_courses(self, data):
        _, courses, matrix = data
        assert len(courses) == 20
        assert matrix.n_courses == 20

    def test_canonical_is_cached(self):
        assert load_canonical_dataset() is load_canonical_dataset()

    def test_course_sizes_plausible(self, data):
        _, courses, _ = data
        sizes = [len(c.tag_set()) for c in courses]
        assert min(sizes) >= 20
        assert max(sizes) <= 160


class TestFigure2:
    def test_four_categories_separate(self, data):
        tree, courses, matrix = data
        typing = type_courses(matrix, 4, seed=FIG2_NMF_SEED)
        l2t = typing.label_to_type(courses)
        ds_dim = l2t.get(CourseLabel.DS, l2t.get(CourseLabel.ALGO))
        dims = {ds_dim, l2t.get(CourseLabel.SOFTENG),
                l2t.get(CourseLabel.PDC), l2t.get(CourseLabel.CS1)}
        assert None not in dims
        assert len(dims) == 4


class TestFigure3:
    def test_cs1_disagreement(self, data):
        tree, courses, _ = data
        cs1 = [c for c in courses if CourseLabel.CS1 in c.labels]
        res = agreement(cs1, tree=tree)
        assert res.n_tags > 180          # "over 200 curriculum tags"
        assert 8 <= res.at_least[4] <= 18  # "only 13 appear in 4 or more"

    def test_cs1_deep_agreement_is_sdf(self, data):
        tree, courses, _ = data
        cs1 = [c for c in courses if CourseLabel.CS1 in c.labels]
        res = agreement(cs1, tree=tree)
        for t in res.tags_at_least(4):
            assert area_of(tree, t).meta["code"] == "SDF"

    def test_ds_agrees_more(self, data):
        tree, courses, _ = data
        cs1 = [c for c in courses if CourseLabel.CS1 in c.labels]
        ds = [c for c in courses if CourseLabel.DS in c.labels]
        r1, r2 = agreement(cs1, tree=tree), agreement(ds, tree=tree)
        assert r2.at_least[2] / r2.n_tags > r1.at_least[2] / r1.n_tags


class TestFigure5:
    def test_cs1_flavor_structure(self, data):
        tree, courses, matrix = data
        ids = [c.id for c in courses if CourseLabel.CS1 in c.labels]
        fa = analyze_flavors(matrix.subset(ids), tree, 3, seed=FIG5_NMF_SEED)
        mem = {cid.split("-")[-1]: int(np.argmax(fa.course_memberships(cid)))
               for cid in ids}
        # Singh (OOP), Kerney (imperative), Ahmed (algorithmic) in three
        # distinct types; Kerney and Kurdia together.
        assert len({mem["singh"], mem["kerney"], mem["ahmed"]}) == 3
        assert mem["kerney"] == mem["kurdia"]
        singh_type = fa.profiles[mem["singh"]]
        assert max(singh_type.area_mass, key=singh_type.area_mass.get) == "PL"


class TestFigure7:
    def test_ds_flavor_structure(self, data):
        tree, courses, matrix = data
        ids = [c.id for c in courses
               if CourseLabel.DS in c.labels or CourseLabel.ALGO in c.labels]
        fa = analyze_flavors(matrix.subset(ids), tree, 3, seed=FIG7_NMF_SEED)
        mm = {cid: int(np.argmax(fa.course_memberships(cid))) for cid in ids}
        assert mm["hanover-225-wahl"] == mm["uncc-2215-krs"] == mm["bsc-210-wagner"]
        assert mm["uncc-2214-krs"] == mm["uncc-2214-saule"]
        assert mm["vcu-256-duke"] not in (mm["hanover-225-wahl"], mm["uncc-2214-krs"])


class TestFigure8:
    def test_pdc_agreement_pd_dominated(self, data):
        tree, courses, _ = data
        pdc = [c for c in courses if CourseLabel.PDC in c.labels]
        res = agreement(pdc, tree=tree)
        areas = res.areas_at_least(2, tree)
        assert max(areas, key=areas.get) == "PD"
        # The non-PD anchors include the paper's trio domains.
        units = {t.split("/")[-2] for t in res.tags_at_least(2)
                 if not t.startswith("CS2013/PD/")}
        assert units & {"GT", "BA", "AD", "AS"}
