"""Cross-module integration tests: the full pipeline, end to end."""

import numpy as np
import pytest

from repro.analysis import build_course_matrix, type_courses
from repro.anchors import recommend_for_course
from repro.curriculum import load_cs2013
from repro.materials import MaterialRepository, SearchQuery, coverage
from repro.workshops import ClassificationNoise, WorkshopSeries, simulate_workshop_series


class TestWorkshopToRecommendations:
    @pytest.fixture(scope="class")
    def pipeline(self):
        tree = load_cs2013()
        result = simulate_workshop_series(WorkshopSeries(tree), seed=44)
        courses = list(result.retained)
        matrix = build_course_matrix(courses, tree=tree)
        return tree, courses, matrix

    def test_matrix_covers_all_courses(self, pipeline):
        tree, courses, matrix = pipeline
        assert matrix.n_courses == 20
        # Every course contributes at least one tag column.
        assert (matrix.matrix.sum(axis=1) > 0).all()

    def test_typing_runs_on_noisy_data(self, pipeline):
        tree, courses, matrix = pipeline
        typing = type_courses(matrix, 4, seed=0)
        assert np.isfinite(typing.reconstruction_err)

    def test_recommendations_for_most_courses(self, pipeline):
        tree, courses, matrix = pipeline
        with_recs = 0
        for c in courses:
            recs = recommend_for_course(c)
            if recs.recommendations:
                assert recs.recommendations[0].score > 0
                with_recs += 1
        # Courses with no anchorable content (e.g. a pure networking course)
        # legitimately get nothing; the overwhelming majority anchor something.
        assert with_recs >= len(courses) * 0.8

    def test_repository_roundtrip(self, pipeline):
        tree, courses, _ = pipeline
        repo = MaterialRepository()
        for c in courses:
            repo.add_course(c)
        # Search for a core SDF topic: should hit materials in many courses.
        loops = next(
            n for n in tree.find_by_label("Iterative control structures (loops)")
        )
        hits = repo.search(SearchQuery(tags=frozenset({loops.id})))
        owning_courses = {h.material.id.split("/")[0] for h in hits}
        assert len(owning_courses) >= 3

    def test_coverage_reports_for_all(self, pipeline):
        tree, courses, _ = pipeline
        for c in courses:
            rep = coverage(c, tree)
            assert 0 < rep.n_tags_covered <= rep.n_tags_total

    def test_noise_propagates_but_preserves_shape(self):
        tree = load_cs2013()
        quiet = simulate_workshop_series(
            WorkshopSeries(tree, noise=ClassificationNoise(0.0, 0.0)), seed=44
        )
        loud = simulate_workshop_series(
            WorkshopSeries(tree, noise=ClassificationNoise(0.15, 0.05)), seed=44
        )
        m_quiet = build_course_matrix(list(quiet.retained), tree=tree)
        m_loud = build_course_matrix(list(loud.retained), tree=tree)
        t_quiet = type_courses(m_quiet, 4, seed=1)
        t_loud = type_courses(m_loud, 4, seed=1)
        # The factorization still finds 4 usable dimensions under noise.
        assert t_quiet.w.shape[1] == t_loud.w.shape[1] == 4
        assert np.isfinite(t_loud.reconstruction_err)
