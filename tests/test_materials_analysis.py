"""Tests for similarity, coverage/alignment, hit-trees, and the matrix view."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.materials.coverage import alignment, coverage
from repro.materials.course import Course
from repro.materials.hittree import alignment_hit_tree, build_hit_tree
from repro.materials.material import Material, MaterialRole, MaterialType
from repro.materials.matrixview import build_matrix_view
from repro.materials.similarity import (
    cosine_similarity,
    jaccard_similarity,
    search_map,
    similarity_graph,
    similarity_matrix,
)


def mat(mid, tags, mtype=MaterialType.LECTURE):
    return Material(mid, mid, mtype, frozenset(tags))


tag_sets = st.frozensets(st.sampled_from([f"t{i}" for i in range(12)]), max_size=8)


class TestSimilarity:
    @given(tag_sets, tag_sets)
    def test_jaccard_bounds_and_symmetry(self, a, b):
        j = jaccard_similarity(a, b)
        assert 0.0 <= j <= 1.0
        assert j == jaccard_similarity(b, a)

    @given(tag_sets)
    def test_jaccard_identity(self, a):
        assert jaccard_similarity(a, a) == 1.0

    @given(tag_sets, tag_sets)
    def test_cosine_bounds(self, a, b):
        c = cosine_similarity(a, b)
        assert 0.0 <= c <= 1.0 + 1e-12
        assert c == cosine_similarity(b, a)

    def test_disjoint_sets(self):
        assert jaccard_similarity(frozenset("ab"), frozenset("cd")) == 0.0
        assert cosine_similarity(frozenset("ab"), frozenset("cd")) == 0.0

    def test_empty_vs_nonempty(self):
        assert cosine_similarity(frozenset(), frozenset("a")) == 0.0

    def test_similarity_matrix_diagonal(self):
        mats = [mat("a", ["x"]), mat("b", ["x", "y"]), mat("c", ["z"])]
        s = similarity_matrix(mats)
        assert np.allclose(np.diag(s), 1.0)
        assert np.allclose(s, s.T)
        assert s[0, 1] == pytest.approx(0.5)
        assert s[0, 2] == 0.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            similarity_matrix([mat("a", ["x"])], metric="euclid")

    def test_similarity_graph_threshold(self):
        mats = [mat("a", ["x"]), mat("b", ["x", "y"]), mat("c", ["z"])]
        g = similarity_graph(mats, threshold=0.4)
        assert g.has_edge("a", "b")
        assert not g.has_edge("a", "c")
        assert g.number_of_nodes() == 3

    def test_search_map_places_similars_close(self):
        mats = [
            mat("q", ["a", "b", "c"]),
            mat("close", ["a", "b", "c", "d"]),
            mat("far", ["x", "y", "z"]),
        ]
        coords, res = search_map(mats, seed=0)
        q, close, far = (np.array(coords[k]) for k in ("q", "close", "far"))
        assert np.linalg.norm(q - close) < np.linalg.norm(q - far)
        assert res.stress >= 0

    def test_search_map_needs_two(self):
        with pytest.raises(ValueError):
            search_map([mat("only", ["a"])])


class TestCoverage:
    def test_counts(self, small_tree):
        c = Course("c", "C", materials=[
            mat("m", ["G/A/U1/t-topic-alpha", "G/A/U1/t-topic-beta"]),
        ])
        rep = coverage(c, small_tree)
        assert rep.n_tags_covered == 2
        assert rep.n_tags_total == 6
        assert rep.by_area["A"] == (2, 4)
        assert rep.by_area["B"] == (0, 2)
        assert rep.by_unit["G/A/U1"] == (2, 3)

    def test_core_fractions(self, small_tree):
        c = Course("c", "C", materials=[mat("m", ["G/A/U1/t-topic-alpha"])])
        rep = coverage(c, small_tree)
        # U1 tags default to unit tier CORE1 except beta (CORE2).
        assert rep.core1_total == 2  # alpha + outcome
        assert rep.core1_covered == 1
        assert 0 < rep.core1_fraction < 1
        assert not rep.meets_core_requirements()

    def test_out_of_tree_tags_ignored(self, small_tree):
        c = Course("c", "C", materials=[mat("m", ["PDC12/other/tag"])])
        assert coverage(c, small_tree).n_tags_covered == 0

    def test_full_coverage_meets_core(self, small_tree):
        c = Course("c", "C", materials=[mat("m", [t.id for t in small_tree.tags()])])
        rep = coverage(c, small_tree)
        assert rep.fraction == 1.0
        assert rep.meets_core_requirements()


class TestAlignment:
    def test_balance_signs(self):
        c = Course("c", "C", materials=[
            mat("lec", ["a", "b"], MaterialType.LECTURE),
            mat("ex", ["b", "z"], MaterialType.EXAM),
        ])
        rep = alignment(c)
        assert rep.only_a == frozenset({"a"})
        assert rep.only_b == frozenset({"z"})
        assert rep.shared == frozenset({"b"})
        assert rep.balance["a"] == -1.0
        assert rep.balance["z"] == 1.0
        assert rep.balance["b"] == 0.0
        assert rep.alignment_fraction == pytest.approx(1 / 3)

    def test_same_role_rejected(self):
        c = Course("c", "C")
        with pytest.raises(ValueError):
            alignment(c, MaterialRole.DELIVERY, MaterialRole.DELIVERY)

    def test_empty_course_fully_aligned(self):
        assert alignment(Course("c", "C")).alignment_fraction == 1.0

    def test_weighted_balance(self):
        c = Course("c", "C", materials=[
            mat("lec1", ["a"], MaterialType.LECTURE),
            mat("lec2", ["a"], MaterialType.LECTURE),
            mat("ex", ["a"], MaterialType.EXAM),
        ])
        rep = alignment(c)
        assert rep.balance["a"] == pytest.approx((1 - 2) / 3)


class TestHitTree:
    def test_weights_roll_up(self, small_tree):
        mats = [
            mat("m1", ["G/A/U1/t-topic-alpha"]),
            mat("m2", ["G/A/U1/t-topic-alpha", "G/A/U2/t-topic-gamma"]),
        ]
        ht = build_hit_tree(mats, small_tree)
        assert ht.weight("G/A/U1/t-topic-alpha") == 2
        assert ht.weight("G/A/U1") == 2
        assert ht.weight("G/A") == 3
        assert ht.weight("G") == 3

    def test_untouched_branches_pruned(self, small_tree):
        ht = build_hit_tree([mat("m", ["G/A/U1/t-topic-alpha"])], small_tree)
        assert "G/B" not in ht.tree

    def test_alignment_colors(self, small_tree):
        a = [mat("a", ["G/A/U1/t-topic-alpha"])]
        b = [mat("b", ["G/B/U3/t-topic-delta"])]
        ht = alignment_hit_tree(a, b, small_tree)
        assert ht.color("G/A/U1/t-topic-alpha") == -1.0
        assert ht.color("G/B/U3/t-topic-delta") == 1.0
        assert ht.color("G") == 0.0  # balanced at the root

    def test_color_range(self, small_tree):
        a = [mat("a", [t.id for t in small_tree.tags()][:3])]
        b = [mat("b", [t.id for t in small_tree.tags()][1:])]
        ht = alignment_hit_tree(a, b, small_tree)
        assert all(-1.0 <= v <= 1.0 for v in ht.colors.values())


class TestMatrixView:
    def test_shape_and_contents(self):
        mats = [mat("m1", ["a", "b"]), mat("m2", ["b"])]
        mv = build_matrix_view(mats)
        assert mv.matrix.shape == (2, 2)
        assert mv.tag_ids == ("a", "b")
        i, j = mv.tag_ids.index("b"), mv.material_ids.index("m2")
        assert mv.matrix[i, j] == 1.0

    def test_reordered_preserves_mass(self):
        mats = [mat(f"m{i}", [f"t{j}" for j in range(i, i + 3)]) for i in range(6)]
        mv = build_matrix_view(mats, n_clusters=2, seed=0)
        assert mv.reordered().sum() == mv.matrix.sum()

    def test_biclustering_blocks(self, rng):
        # Two disjoint blocks of materials should be separated.
        mats = [mat(f"a{i}", [f"x{j}" for j in range(4)]) for i in range(4)]
        mats += [mat(f"b{i}", [f"y{j}" for j in range(4)]) for i in range(4)]
        mv = build_matrix_view(mats, n_clusters=2, seed=0)
        a_labels = {mv.col_labels[i] for i, m in enumerate(mv.material_ids) if m.startswith("a")}
        b_labels = {mv.col_labels[i] for i, m in enumerate(mv.material_ids) if m.startswith("b")}
        assert len(a_labels) == 1 and len(b_labels) == 1 and a_labels != b_labels

    def test_set_cell_returns_copy(self):
        mats = [mat("m1", ["a"])]
        mv = build_matrix_view(mats)
        mv2 = mv.set_cell("a", "m1", False)
        assert mv.matrix[0, 0] == 1.0
        assert mv2.matrix[0, 0] == 0.0


class TestVectorizedSimilarityMatrix:
    def test_matches_pairwise_functions(self, rng):
        pool = [f"t{i}" for i in range(15)]
        mats = []
        for i in range(12):
            k = int(rng.integers(0, 8))
            tags = rng.choice(pool, size=k, replace=False) if k else []
            mats.append(mat(f"m{i}", list(tags)))
        for metric, fn in (("jaccard", jaccard_similarity),
                           ("cosine", cosine_similarity)):
            s = similarity_matrix(mats, metric=metric)
            for i in range(len(mats)):
                for j in range(len(mats)):
                    expected = fn(mats[i].mappings, mats[j].mappings)
                    assert s[i, j] == pytest.approx(expected), (metric, i, j)

    def test_empty_materials(self):
        mats = [mat("a", []), mat("b", []), mat("c", ["x"])]
        sj = similarity_matrix(mats, metric="jaccard")
        sc = similarity_matrix(mats, metric="cosine")
        assert sj[0, 1] == 1.0 and sc[0, 1] == 1.0   # empty-empty
        assert sj[0, 2] == 0.0 and sc[0, 2] == 0.0   # empty-nonempty

    def test_scales_to_corpus(self, rng):
        pool = [f"t{i}" for i in range(200)]
        mats = [
            mat(f"m{i}", list(rng.choice(pool, size=6, replace=False)))
            for i in range(300)
        ]
        s = similarity_matrix(mats)
        assert s.shape == (300, 300)
        assert np.allclose(np.diag(s), 1.0)
