"""Quarantine-style ingestion: malformed rosters split, they don't crash.

Covers :mod:`repro.corpus.ingest`, the report types in
:mod:`repro.materials.ingest`, and
:meth:`~repro.materials.repository.MaterialRepository.ingest` — the
paper's 20-retained/11-excluded roster accounting applied to our own
loaders.
"""

import json

import pytest

import repro.runtime as runtime
from repro.corpus.ingest import ingest_courses, load_courses_tolerant
from repro.curriculum import load_cs2013
from repro.io.json_io import course_from_dict
from repro.materials.ingest import (
    REASON_BAD_MATERIAL,
    REASON_DUPLICATE_COURSE,
    REASON_DUPLICATE_MATERIAL,
    REASON_MISSING_ID,
    REASON_UNKNOWN_TAG,
    REASON_UNPARSABLE,
    ExcludedRecord,
    IngestReport,
    merge_reports,
)
from repro.materials.repository import MaterialRepository


@pytest.fixture(autouse=True)
def _isolated_runtime():
    runtime.reset()
    yield
    runtime.reset()


@pytest.fixture
def tree():
    return load_cs2013()


@pytest.fixture
def tag(tree):
    return sorted(tree.tag_ids())[0]


def _course(course_id, materials=()):
    return {"id": course_id, "name": course_id, "materials": list(materials)}


def _material(mat_id, **over):
    d = {"id": mat_id, "title": mat_id, "type": "slides"}
    d.update(over)
    return d


@pytest.fixture
def messy_roster(tag):
    """Eight records exercising every exclusion reason once."""
    return [
        _course("c1", [_material("m1", mappings=[tag])]),
        _course("c1"),                                   # duplicate course id
        {"name": "anonymous"},                           # missing id
        ["not", "a", "course"],                          # unparsable record
        _course("c2", [_material("m2", type="hologram")]),   # bad material
        _course("c3", [_material("m3"), _material("m3")]),   # duplicate material
        _course("c4", [_material("m4", mappings=["no/such/tag"])]),  # unknown tag
        _course("c5"),
    ]


class TestIngestCourses:
    def test_split_with_per_record_reasons(self, messy_roster, tree):
        report = ingest_courses(messy_roster, trees=[tree])
        assert report.n_retained == 2
        assert report.n_excluded == 6
        assert report.n_seen == 8
        assert [c.id for c in report.retained] == ["c1", "c5"]
        assert report.reasons == {
            REASON_DUPLICATE_COURSE: 1,
            REASON_MISSING_ID: 1,
            REASON_UNPARSABLE: 1,
            REASON_BAD_MATERIAL: 1,
            REASON_DUPLICATE_MATERIAL: 1,
            REASON_UNKNOWN_TAG: 1,
        }

    def test_material_level_faults_name_the_material(self, messy_roster, tree):
        report = ingest_courses(messy_roster, trees=[tree])
        by_reason = {r.reason: r for r in report.excluded}
        assert by_reason[REASON_BAD_MATERIAL].material_id == "m2"
        assert by_reason[REASON_DUPLICATE_MATERIAL].material_id == "m3"
        assert by_reason[REASON_UNKNOWN_TAG].material_id == "m4"
        assert "no/such/tag" in by_reason[REASON_UNKNOWN_TAG].detail

    def test_clean_roster_excludes_nothing(self, tag):
        records = [_course(f"c{i}", [_material(f"m{i}", mappings=[tag])])
                   for i in range(5)]
        report = ingest_courses(records)
        assert report.n_excluded == 0 and report.n_retained == 5

    def test_tag_check_requires_trees(self):
        # Without trees, mappings are taken on faith.
        records = [_course("c", [_material("m", mappings=["no/such/tag"])])]
        assert ingest_courses(records).n_retained == 1

    def test_strict_raises_listing_every_record(self, messy_roster, tree):
        with pytest.raises(ValueError) as exc_info:
            ingest_courses(messy_roster, trees=[tree], strict=True)
        message = str(exc_info.value)
        assert "6 of 8" in message
        for rid in ("c2", "c3", "c4"):
            assert rid in message

    def test_metrics_count_the_split(self, messy_roster, tree):
        ingest_courses(messy_roster, trees=[tree])
        assert runtime.metrics.get("corpus.ingest.retained") == 2
        assert runtime.metrics.get("corpus.ingest.excluded") == 6


class TestLoadCoursesTolerant:
    def test_roundtrip_with_bad_records(self, tmp_path, messy_roster, tree):
        path = tmp_path / "corpus.json"
        path.write_text(json.dumps(
            {"format": "repro-courses", "version": 1, "courses": messy_roster}
        ))
        report = load_courses_tolerant(path, trees=[tree])
        assert report.n_retained == 2 and report.n_excluded == 6

    def test_envelope_errors_still_raise(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else", "courses": []}))
        with pytest.raises(ValueError, match="not a repro course file"):
            load_courses_tolerant(path)
        path.write_text(json.dumps({"format": "repro-courses", "version": 99}))
        with pytest.raises(ValueError, match="unsupported version"):
            load_courses_tolerant(path)


class TestReportTypes:
    def test_report_json_shape(self, messy_roster, tree):
        report = ingest_courses(messy_roster, trees=[tree])
        data = json.loads(report.to_json())
        assert data["n_seen"] == 8
        assert data["retained"] == ["c1", "c5"]
        assert len(data["excluded"]) == 6
        assert all(
            set(e) == {"course_id", "reason", "detail", "material_id"}
            for e in data["excluded"]
        )

    def test_summary_lists_exclusions(self, messy_roster, tree):
        text = ingest_courses(messy_roster, trees=[tree]).summary()
        assert "retained 2 of 8" in text
        assert REASON_UNKNOWN_TAG in text

    def test_excluded_record_str(self):
        rec = ExcludedRecord("c9", REASON_BAD_MATERIAL,
                             detail="boom", material_id="m9")
        assert "c9" in str(rec) and "m9" in str(rec) and "boom" in str(rec)

    def test_merge_reports(self):
        r1 = IngestReport(excluded=[ExcludedRecord("a", REASON_MISSING_ID)])
        r2 = IngestReport(excluded=[ExcludedRecord("b", REASON_MISSING_ID)])
        merged = merge_reports([r1, r2])
        assert merged.n_excluded == 2
        assert merged.reasons == {REASON_MISSING_ID: 2}


class TestRepositoryIngest:
    def test_ingest_splits_against_repository_state(self, tag):
        repo = MaterialRepository()
        c1 = course_from_dict(_course("c1", [_material("m1", mappings=[tag])]))
        c1_dup = course_from_dict(
            {"id": "c1", "name": "imposter", "materials": []}
        )
        conflict = course_from_dict(
            _course("c2", [_material("m1", title="CONFLICT")])
        )
        clean = course_from_dict(_course("c3"))
        report = repo.ingest([c1, c1_dup, conflict, clean])
        assert [c.id for c in report.retained] == ["c1", "c3"]
        assert report.reasons == {
            REASON_DUPLICATE_COURSE: 1,
            "conflicting-material-id": 1,
        }
        assert repo.n_courses == 2

    def test_ingest_strict_raises(self):
        repo = MaterialRepository()
        c = course_from_dict(_course("c1"))
        repo.ingest([c])
        with pytest.raises(ValueError):
            repo.ingest([c], strict=True)

    def test_add_course_is_atomic(self, tag):
        """A rejected course must not leave materials behind."""
        repo = MaterialRepository()
        repo.add_course(course_from_dict(
            _course("c1", [_material("shared", mappings=[tag])])
        ))
        bad = course_from_dict(_course("c2", [
            _material("fresh"),
            _material("shared", title="CONFLICT"),
        ]))
        before = repo.n_materials
        with pytest.raises(ValueError, match="conflicting"):
            repo.add_course(bad)
        assert repo.n_materials == before
        with pytest.raises(KeyError):
            repo.material("fresh")
