"""Round-trip tests for guideline tree serialization."""

import json

import pytest

from repro.ontology.serialize import tree_from_dict, tree_to_dict


class TestRoundTrip:
    def test_small_tree_round_trips(self, small_tree):
        data = tree_to_dict(small_tree)
        back = tree_from_dict(data)
        assert set(back.node_ids()) == set(small_tree.node_ids())
        for nid in small_tree.node_ids():
            a, b = small_tree[nid], back[nid]
            assert (a.label, a.kind, a.tier, a.mastery, a.bloom) == (
                b.label, b.kind, b.tier, b.mastery, b.bloom
            )
            assert back.child_ids(nid) == small_tree.child_ids(nid)

    def test_json_serializable(self, small_tree):
        text = json.dumps(tree_to_dict(small_tree))
        back = tree_from_dict(json.loads(text))
        assert len(back) == len(small_tree)

    def test_cs2013_round_trips(self, cs2013):
        back = tree_from_dict(tree_to_dict(cs2013))
        assert len(back) == len(cs2013)
        assert back.tag_ids() == cs2013.tag_ids()

    def test_pdc12_round_trips(self, pdc12):
        back = tree_from_dict(tree_to_dict(pdc12))
        assert len(back) == len(pdc12)
        # Bloom levels survive the trip.
        blooms_a = [n.bloom for n in pdc12.tags()]
        blooms_b = [n.bloom for n in back.tags()]
        assert blooms_a == blooms_b

    def test_duplicate_id_rejected_on_load(self, small_tree):
        data = tree_to_dict(small_tree)
        data["children"].append(dict(data["children"][0]))
        with pytest.raises(ValueError, match="duplicate"):
            tree_from_dict(data)

    def test_meta_preserved(self, cs2013):
        data = tree_to_dict(cs2013)
        back = tree_from_dict(data)
        sdf = back["CS2013/SDF"]
        assert sdf.meta.get("code") == "SDF"
