"""Chaos + lock-sanitizer integration for the service stack.

The strongest claim this PR makes is cross-cutting: a broker +
resident-pool service under injected worker crashes and task errors
must (a) keep serving bit-identical results, and (b) do so without a
single lock-order inversion observed by the runtime sanitizer.  The
static RPR5xx rules prove the ordering discipline about the code; this
test checks the same property on the live system while the fault
injector forces the recovery paths (pool rebuilds, retries) that a
quiet run never takes.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.runtime as runtime
from repro.analysis import type_courses
from repro.runtime import sanitize
from repro.runtime.faults import set_fault_plan
from repro.service import (
    ReproService,
    ServiceClient,
    ServiceConfig,
    ServiceState,
)


def _json_roundtrip(doc):
    return json.loads(json.dumps(doc))


@pytest.fixture
def chaos_sanitized(monkeypatch):
    """Sanitizer armed, fault plan injected, everything restored after.

    The sanitizer must be enabled *before* the service stack is built:
    instrumentation is decided at lock creation.  The fault plan uses
    ``only_first_attempt`` so every injected failure is recoverable and
    the run still has a deterministic right answer.
    """
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    runtime.reset()
    sanitize.set_sanitize("locks")
    sanitize.reset()
    yield
    set_fault_plan(None)
    sanitize.set_sanitize(None)
    sanitize.reset()
    runtime.reset()


class TestServiceChaosWithSanitizer:
    def test_crashy_service_bit_identical_and_inversion_free(
        self, dataset, chaos_sanitized
    ):
        tree, courses, _ = dataset
        seeds = list(range(6))

        # Fault-free ground truth, computed before the plan is armed.
        state = ServiceState(
            tree, courses,
            config=ServiceConfig(n_shards=2, window_s=0.005),
        )
        expected = {
            seed: type_courses(state.matrix, 4, seed=seed, n_restarts=2)
            for seed in seeds
        }

        set_fault_plan(
            "seed=7,task_error=0.2,pool_crash=0.2,only_first_attempt=1"
        )
        with ReproService(state) as svc:
            host, port = svc.address

            def fetch(seed):
                with ServiceClient(host, port) as c:
                    return c.post(
                        "/typing", {"k": 4, "seed": seed, "n_restarts": 2}
                    )

            with ThreadPoolExecutor(max_workers=6) as pool:
                first = list(pool.map(fetch, seeds))
                second = list(pool.map(fetch, seeds))

        for seed, (status, doc) in zip(seeds, first):
            assert status == 200
            direct = expected[seed]
            assert doc["reconstruction_err"] == direct.reconstruction_err
            assert doc["w"] == _json_roundtrip(direct.w.tolist())
        # Run-to-run identity under live fault injection.
        assert [doc for _, doc in first] == [doc for _, doc in second]

        san = sanitize.sanitizer()
        inversions = [
            v for v in san.violations() if v.kind == "order_inversion"
        ]
        assert inversions == [], "\n".join(v.detail for v in inversions)
        # The run actually exercised instrumented locks.
        assert san.counters().get("sanitizer.acquisitions", 0) > 0

    def test_sanitizer_section_in_service_metrics(
        self, dataset, chaos_sanitized
    ):
        tree, courses, _ = dataset
        state = ServiceState(
            tree, courses,
            config=ServiceConfig(n_shards=2, window_s=0.005),
        )
        with ReproService(state) as svc:
            host, port = svc.address
            with ServiceClient(host, port) as c:
                status, doc = c.get("/metrics")
        assert status == 200
        assert doc["sanitizer"]["enabled"] is True
        assert doc["sanitizer"]["n_violations"] == 0
