"""Tests for the guideline tree container and builder."""

import pytest

from repro.ontology.builder import TreeBuilder
from repro.ontology.node import Mastery, NodeKind, OntologyNode, Tier
from repro.ontology.tree import GuidelineTree


class TestNode:
    def test_tag_kinds(self):
        assert NodeKind.TOPIC.is_tag and NodeKind.OUTCOME.is_tag
        assert not NodeKind.AREA.is_tag and not NodeKind.UNIT.is_tag

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            OntologyNode("", "x", NodeKind.TOPIC)

    def test_rejects_mastery_on_topic(self):
        with pytest.raises(ValueError):
            OntologyNode("t", "x", NodeKind.TOPIC, mastery=Mastery.USAGE)

    def test_short_id(self):
        n = OntologyNode("A/B/c", "x", NodeKind.TOPIC)
        assert n.short_id == "c"


class TestTreeStructure:
    def test_len_and_contains(self, small_tree):
        assert len(small_tree) == 12
        assert "G/A/U1" in small_tree
        assert "G/nope" not in small_tree

    def test_getitem_raises_keyerror(self, small_tree):
        with pytest.raises(KeyError):
            small_tree["missing"]
        assert small_tree.get("missing") is None

    def test_parent_child_symmetry(self, small_tree):
        for nid in small_tree.node_ids():
            for kid in small_tree.child_ids(nid):
                assert small_tree.parent_id(kid) == nid

    def test_root_has_no_parent(self, small_tree):
        assert small_tree.parent(small_tree.root_id) is None

    def test_depths(self, small_tree):
        assert small_tree.depth("G") == 0
        assert small_tree.depth("G/A") == 1
        assert small_tree.depth("G/A/U1") == 2
        assert small_tree.height() == 3

    def test_level_sizes_sum_to_len(self, small_tree):
        assert sum(small_tree.level_sizes()) == len(small_tree)

    def test_preorder_starts_at_root_and_visits_all(self, small_tree):
        order = list(small_tree.iter_preorder_ids())
        assert order[0] == small_tree.root_id
        assert len(order) == len(small_tree)
        assert len(set(order)) == len(order)

    def test_preorder_parents_before_children(self, small_tree):
        seen = set()
        for nid in small_tree.iter_preorder_ids():
            pid = small_tree.parent_id(nid)
            assert pid is None or pid in seen
            seen.add(nid)

    def test_ancestors(self, small_tree):
        anc = [a.id for a in small_tree.ancestors("G/A/U1/t-topic-alpha")]
        assert anc == ["G/A/U1", "G/A", "G"]

    def test_descendants(self, small_tree):
        desc = small_tree.descendant_ids("G/A")
        assert "G/A/U1/t-topic-alpha" in desc
        assert "G/B/U3/t-topic-delta" not in desc

    def test_leaves_have_no_children(self, small_tree):
        for leaf in small_tree.leaves():
            assert small_tree.child_ids(leaf.id) == ()

    def test_tags_are_topics_and_outcomes(self, small_tree):
        tags = small_tree.tags()
        assert len(tags) == 6
        assert all(t.is_tag for t in tags)

    def test_areas(self, small_tree):
        assert [a.id for a in small_tree.areas()] == ["G/A", "G/B"]

    def test_find_by_label_case_insensitive(self, small_tree):
        assert len(small_tree.find_by_label("TOPIC ALPHA")) == 1

    def test_subtree(self, small_tree):
        sub = small_tree.subtree("G/A")
        assert sub.root_id == "G/A"
        assert len(sub) == 7
        assert sub.depth("G/A") == 0


class TestFilter:
    def test_filter_keeps_ancestors(self, small_tree):
        sub = small_tree.filter(lambda n: n.id == "G/A/U1/t-topic-alpha")
        assert set(sub.node_ids()) == {"G", "G/A", "G/A/U1", "G/A/U1/t-topic-alpha"}

    def test_filter_empty_keeps_root(self, small_tree):
        sub = small_tree.filter(lambda n: False)
        assert set(sub.node_ids()) == {"G"}

    def test_filter_all_is_identity(self, small_tree):
        sub = small_tree.filter(lambda n: True)
        assert set(sub.node_ids()) == set(small_tree.node_ids())

    def test_filter_preserves_child_order(self, small_tree):
        sub = small_tree.filter(lambda n: True)
        for nid in sub.node_ids():
            assert sub.child_ids(nid) == small_tree.child_ids(nid)


class TestTreeValidation:
    def test_rejects_unknown_root(self):
        with pytest.raises(ValueError):
            GuidelineTree({}, {}, "missing")

    def test_rejects_unknown_child(self):
        nodes = {"r": OntologyNode("r", "root", NodeKind.ROOT)}
        with pytest.raises(ValueError):
            GuidelineTree(nodes, {"r": ("ghost",)}, "r")

    def test_rejects_multiple_parents(self):
        nodes = {
            "r": OntologyNode("r", "root", NodeKind.ROOT),
            "a": OntologyNode("a", "a", NodeKind.AREA),
            "b": OntologyNode("b", "b", NodeKind.AREA),
            "t": OntologyNode("t", "t", NodeKind.UNIT),
        }
        children = {"r": ("a", "b"), "a": ("t",), "b": ("t",)}
        with pytest.raises(ValueError, match="multiple parents"):
            GuidelineTree(nodes, children, "r")

    def test_rejects_orphans(self):
        nodes = {
            "r": OntologyNode("r", "root", NodeKind.ROOT),
            "x": OntologyNode("x", "x", NodeKind.AREA),
        }
        with pytest.raises(ValueError, match="unreachable"):
            GuidelineTree(nodes, {"r": ()}, "r")

    def test_validate_kind_nesting(self):
        b = TreeBuilder("R", "root")
        area = b.area("A", "area")
        tree = b.build()
        tree.validate()  # fine: area under root


class TestBuilder:
    def test_duplicate_id_rejected(self):
        b = TreeBuilder("R", "root")
        a = b.area("A", "area")
        u = b.unit(a, "U", "unit")
        b.topic(u, "same label")
        with pytest.raises(ValueError, match="duplicate"):
            b.topic(u, "same label")

    def test_key_override_avoids_collision(self):
        b = TreeBuilder("R", "root")
        a = b.area("A", "area")
        u = b.unit(a, "U", "unit")
        b.topic(u, "same label")
        tid = b.topic(u, "same label", key="second")
        assert tid.endswith("t-second")

    def test_unknown_parent_rejected(self):
        b = TreeBuilder("R", "root")
        with pytest.raises(KeyError):
            b.unit("R/missing", "U", "unit")

    def test_slug_generation(self):
        b = TreeBuilder("R", "root")
        a = b.area("A", "area")
        u = b.unit(a, "U", "unit")
        tid = b.topic(u, "Big O notation: use (Theta and Omega)")
        assert tid == "R/A/U/t-big-o-notation-use-theta-and-omega"

    def test_tier_inheritance_not_applied_by_builder(self):
        # The builder stores exactly what it is given; inheritance is the
        # curriculum schema's job.
        b = TreeBuilder("R", "root")
        a = b.area("A", "area")
        u = b.unit(a, "U", "unit", tier=Tier.CORE1)
        tid = b.topic(u, "topic")
        tree = b.build()
        assert tree[tid].tier is None


class TestLevelIteration:
    def test_iter_level_ids(self, small_tree):
        areas = set(small_tree.iter_level_ids(1))
        assert areas == {"G/A", "G/B"}
        assert set(small_tree.iter_level_ids(0)) == {"G"}
        assert len(list(small_tree.iter_level_ids(3))) == 6
        assert list(small_tree.iter_level_ids(99)) == []
