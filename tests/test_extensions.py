"""Tests for the extension modules: external catalogs, material
recommendations, expectation profiles, topic dependencies, and
dual-guideline classification."""

import pytest

from repro.analysis.dependencies import topic_dependencies
from repro.analysis.mastery import compare_expectations, expectation_profile
from repro.anchors.material_recommender import coverage_gain, recommend_materials
from repro.corpus.generator import generate_corpus, sample_pdc12_tags
from repro.corpus.roster import ROSTER
from repro.materials.course import Course, CourseLabel
from repro.materials.external import external_collections, load_external_materials
from repro.materials.material import Material, MaterialType
from repro.ontology.node import Bloom, Mastery


class TestExternalCatalog:
    def test_collections_present(self):
        groups = external_collections()
        assert set(groups) == {"nifty", "peachy", "pdcunplugged"}
        assert all(len(v) >= 5 for v in groups.values())

    def test_all_mappings_resolve(self, cs2013, pdc12):
        for m in load_external_materials():
            for t in m.mappings:
                tree = cs2013 if t.startswith("CS2013/") else pdc12
                assert t in tree and tree[t].is_tag

    def test_nifty_has_no_pdc_content(self):
        """§2.2: Nifty assignments are 'unrelated to PDC'."""
        for m in external_collections()["nifty"]:
            assert not any(t.startswith("PDC12/") for t in m.mappings)

    def test_peachy_and_unplugged_teach_pdc(self):
        for coll in ("peachy", "pdcunplugged"):
            for m in external_collections()[coll]:
                assert any(t.startswith("PDC12/") for t in m.mappings), m.id

    def test_ids_unique_and_namespaced(self):
        mats = load_external_materials()
        ids = [m.id for m in mats]
        assert len(set(ids)) == len(ids)
        assert all("/" in i for i in ids)


class TestMaterialRecommender:
    @pytest.fixture()
    def ds_course(self, courses):
        return next(c for c in courses if c.id == "uncc-2214-krs")

    def test_ranked_descending(self, ds_course):
        recs = recommend_materials(ds_course, load_external_materials())
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_anchored_materials_rank_above_unanchored(self, ds_course):
        recs = recommend_materials(ds_course, load_external_materials())
        first_unanchored = next(
            (i for i, r in enumerate(recs) if not r.anchored), len(recs)
        )
        # Every anchored material with novelty outranks unanchored ones.
        for r in recs[:first_unanchored]:
            assert r.anchored

    def test_pdc_teaching_material_shows_new_tags(self, ds_course):
        recs = recommend_materials(ds_course, load_external_materials())
        peachy = [r for r in recs if r.material.id.startswith("peachy/")]
        assert peachy
        assert all(r.new_pdc_tags for r in peachy)

    def test_limit(self, ds_course):
        recs = recommend_materials(ds_course, load_external_materials(), limit=3)
        assert len(recs) == 3

    def test_material_teaching_nothing_new_scores_low(self, pdc12):
        # A course that already covers everything a material teaches.
        pool = [m for m in load_external_materials()
                if m.id == "pdcunplugged/card-merge"]
        (mat,) = pool
        course = Course("c", "C", materials=[
            Material("c/m", "m", MaterialType.LECTURE, mat.mappings)
        ])
        (rec,) = recommend_materials(course, pool)
        assert rec.new_pdc_tags == ()
        # Score contains no novelty term: anchor coverage alone caps it at 1.
        assert rec.score <= 1.0

    def test_coverage_gain(self, ds_course):
        mats = [m for m in load_external_materials()
                if m.id.startswith("peachy/")][:3]
        gained = coverage_gain(ds_course, mats)
        assert gained
        assert all(t.startswith("PDC12/") for t in gained)


class TestExpectationProfiles:
    def test_cs2013_profile(self, courses, cs2013):
        c = next(c for c in courses if CourseLabel.DS in c.labels)
        prof = expectation_profile(c, cs2013)
        assert prof.n_outcomes > 0
        assert 1.0 <= prof.mean_mastery <= 3.0
        assert 0.0 <= prof.assessment_share <= 1.0

    def test_pdc12_bloom_profile(self, cs2013, pdc12):
        courses = generate_corpus(cs2013, seed=44, pdc_tree=pdc12)
        pdc_course = next(c for c in courses if c.id == "uncc-3145-saule")
        prof = expectation_profile(pdc_course, pdc12)
        assert prof.bloom_counts
        assert 1.0 <= prof.mean_bloom <= 3.0

    def test_empty_course_zeroes(self, cs2013):
        prof = expectation_profile(Course("c", "C"), cs2013)
        assert prof.mean_mastery == 0.0
        assert prof.mean_bloom == 0.0
        assert prof.assessment_share == 0.0

    def test_compare_covers_all(self, courses, cs2013):
        profs = compare_expectations(list(courses)[:4], cs2013)
        assert len(profs) == 4

    def test_known_mastery_math(self, small_tree):
        c = Course("c", "C", materials=[
            Material("c/m", "m", MaterialType.LECTURE,
                     frozenset({"G/A/U1/o-do-alpha-things",
                                "G/B/U3/o-do-delta-things"})),
        ])
        prof = expectation_profile(c, small_tree)
        # USAGE (2) + FAMILIARITY (1) -> mean 1.5.
        assert prof.mean_mastery == pytest.approx(1.5)
        assert prof.mastery_counts == {Mastery.USAGE: 1, Mastery.FAMILIARITY: 1}


class TestTopicDependencies:
    def test_acyclic_and_complete(self, courses):
        c = list(courses)[0]
        deps = topic_dependencies(c)
        assert set(deps.graph.weights) == set(c.tag_set())
        # TaskGraph construction validates acyclicity.
        assert deps.chain_length() >= 1

    def test_intro_positions_monotone(self, courses):
        c = list(courses)[0]
        deps = topic_dependencies(c)
        for u, vs in deps.graph.successors.items():
            for v in vs:
                assert deps.intro_position[u] < deps.intro_position[v]

    def test_handcrafted_chain(self):
        c = Course("c", "C", materials=[
            Material("c/1", "1", MaterialType.LECTURE, frozenset({"a"})),
            Material("c/2", "2", MaterialType.LECTURE, frozenset({"a", "b"})),
            Material("c/3", "3", MaterialType.LECTURE, frozenset({"b", "c"})),
        ])
        deps = topic_dependencies(c)
        assert deps.longest_chain() == ["a", "b", "c"]
        assert deps.prerequisite_depth("c") == 3
        assert deps.prerequisite_depth("a") == 1

    def test_no_edge_without_cooccurrence(self):
        c = Course("c", "C", materials=[
            Material("c/1", "1", MaterialType.LECTURE, frozenset({"a"})),
            Material("c/2", "2", MaterialType.LECTURE, frozenset({"b"})),
        ])
        deps = topic_dependencies(c)
        assert deps.graph.n_edges == 0

    def test_foundational_tags(self):
        mats = [Material("c/0", "0", MaterialType.LECTURE, frozenset({"root"}))]
        mats += [
            Material(f"c/{i}", str(i), MaterialType.LECTURE,
                     frozenset({"root", f"leaf{i}"}))
            for i in range(1, 5)
        ]
        deps = topic_dependencies(Course("c", "C", materials=mats))
        assert deps.foundational_tags(min_dependents=3) == ["root"]


class TestDualClassification:
    def test_pdc_course_gets_pdc12_tags(self, cs2013, pdc12):
        courses = generate_corpus(cs2013, seed=44, pdc_tree=pdc12)
        pdc_tagged = {
            c.id: sum(1 for t in c.tag_set() if t.startswith("PDC12/"))
            for c in courses
        }
        assert pdc_tagged["uncc-3145-saule"] > 10
        assert pdc_tagged["knox-309-bunde"] > 10
        assert pdc_tagged["ccc-40-kerney"] == 0

    def test_sample_pdc12_empty_for_plain_mixture(self, pdc12):
        assert sample_pdc12_tags(pdc12, {"cs1-imperative": 1.0}, seed=0) == frozenset()

    def test_sample_pdc12_deterministic(self, pdc12):
        a = sample_pdc12_tags(pdc12, {"pdc": 1.0}, seed=4)
        b = sample_pdc12_tags(pdc12, {"pdc": 1.0}, seed=4)
        assert a == b and a

    def test_canonical_dataset_unaffected(self, cs2013, courses):
        """The canonical corpus (no pdc_tree) stays CS2013-only."""
        regenerated = generate_corpus(cs2013, seed=44)
        assert [c.tag_set() for c in regenerated] == [c.tag_set() for c in courses]
        for c in regenerated:
            assert all(t.startswith("CS2013/") for t in c.tag_set())

    def test_bloom_levels_present_on_sampled(self, pdc12):
        tags = sample_pdc12_tags(pdc12, {"pdc": 1.0}, seed=1)
        blooms = {pdc12[t].bloom for t in tags}
        assert blooms & {Bloom.KNOW, Bloom.COMPREHEND, Bloom.APPLY}


class TestCurriculumParallelism:
    """Topic-dependency DAGs double as 'how parallel is this course' models."""

    def test_parallelism_defined_for_all_courses(self, courses):
        from repro.analysis.dependencies import topic_dependencies
        for c in list(courses)[:5]:
            deps = topic_dependencies(c)
            p = deps.graph.parallelism()
            assert p >= 1.0
            # Parallelism cannot exceed the topic count.
            assert p <= deps.graph.n_tasks

    def test_course_topics_schedule_like_tasks(self, courses):
        from repro.analysis.dependencies import topic_dependencies
        from repro.taskgraph import list_schedule
        deps = topic_dependencies(list(courses)[0])
        s = list_schedule(deps.graph, 4)
        s.validate()
        assert s.speedup() <= deps.graph.parallelism() + 1e-9
