"""Tests for the RPR5xx concurrency rule family.

Each rule gets a *bad* fixture that must fire and a *corrected* fixture
that must stay silent, per the CONTRIBUTING.md contract.  The rules
lean on cross-method inference (guarded-by analysis, ambient-lock
fixpoint) and cross-file inference (the lock-ordering graph), so the
fixtures exercise those paths explicitly rather than single statements.
"""

import textwrap

import pytest

from repro.quality import ProjectContext, analyze_paths, build_lock_graph
from repro.quality.concurrency import file_model, module_name_of


def lint_sources(tmp_path, files, select=None):
    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return analyze_paths([str(tmp_path)], select=select)


def codes(result):
    return [f.code for f in result.findings]


class TestRPR501GuardedFields:
    BAD = """\
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}

            def put(self, k, v):
                with self._lock:
                    self._items[k] = v

            def wipe(self):
                self._items = {}
        """

    def test_mixed_guarded_unguarded_write_fires(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": self.BAD},
                              select=["RPR501"])
        assert codes(result) == ["RPR501"]
        f = result.findings[0]
        assert "_items" in f.message
        assert "self._lock" in f.message
        assert f.line == 13  # the unguarded write in wipe()

    def test_all_writes_guarded_is_silent(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, k, v):
                    with self._lock:
                        self._items[k] = v

                def wipe(self):
                    with self._lock:
                        self._items = {}
            """}, select=["RPR501"])
        assert result.findings == []

    def test_init_writes_never_count_as_unguarded(self, tmp_path):
        """``__init__`` runs before the object escapes; its writes are
        construction, not races."""
        result = lint_sources(tmp_path, {"mod.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, k, v):
                    with self._lock:
                        self._items[k] = v
            """}, select=["RPR501"])
        assert result.findings == []

    def test_ambient_lock_via_private_helper(self, tmp_path):
        """A private method only ever called with the lock held inherits
        it — the cross-method inference that kills the obvious false
        positive on guarded helper functions."""
        result = lint_sources(tmp_path, {"mod.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, k, v):
                    with self._lock:
                        self._put_locked(k, v)

                def drop(self, k):
                    with self._lock:
                        self._put_locked(k, None)

                def _put_locked(self, k, v):
                    self._items[k] = v
            """}, select=["RPR501"])
        assert result.findings == []

    def test_helper_called_unlocked_gets_no_ambient_lock(self, tmp_path):
        """A helper with even one lock-free call site inherits nothing,
        so its write conflicts with the directly guarded one."""
        result = lint_sources(tmp_path, {"mod.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, k, v):
                    with self._lock:
                        self._items[k] = v

                def put_fast(self, k, v):
                    self._put_locked(k, v)

                def _put_locked(self, k, v):
                    self._items[k] = v
            """}, select=["RPR501"])
        assert codes(result) == ["RPR501"]
        assert result.findings[0].line == 16  # the helper's write

    def test_module_global_variant(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import threading

            _lock = threading.Lock()
            _registry = {}

            def register(k, v):
                with _lock:
                    _registry[k] = v

            def clear():
                global _registry
                _registry = {}
            """}, select=["RPR501"])
        assert codes(result) == ["RPR501"]

    def test_mutator_calls_count_as_writes(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def put(self, v):
                    with self._lock:
                        self._items.append(v)

                def put_fast(self, v):
                    self._items.append(v)
            """}, select=["RPR501"])
        assert codes(result) == ["RPR501"]


class TestRPR502UnstructuredAcquire:
    def test_bare_acquire_without_finally_fires(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def risky(self):
                    self._lock.acquire()
                    do_work()
                    self._lock.release()
            """}, select=["RPR502"])
        assert codes(result) == ["RPR502"]
        assert "acquire" in result.findings[0].message

    def test_acquire_with_finally_release_is_silent(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def careful(self):
                    self._lock.acquire()
                    try:
                        do_work()
                    finally:
                        self._lock.release()
            """}, select=["RPR502"])
        assert result.findings == []

    def test_with_statement_is_silent(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def fine(self):
                    with self._lock:
                        do_work()
            """}, select=["RPR502"])
        assert result.findings == []


class TestRPR503BlockingUnderLock:
    def test_future_result_under_lock_fires(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import threading

            class Runner:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait(self, future):
                    with self._lock:
                        return future.result()
            """}, select=["RPR503"])
        assert codes(result) == ["RPR503"]

    def test_queue_get_without_timeout_fires(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import queue
            import threading

            class Runner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._q = queue.Queue()

                def drain(self):
                    with self._lock:
                        return self._q.get()
            """}, select=["RPR503"])
        assert codes(result) == ["RPR503"]

    def test_queue_get_with_timeout_is_silent(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import queue
            import threading

            class Runner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._q = queue.Queue()

                def drain(self):
                    with self._lock:
                        return self._q.get(timeout=1.0)
            """}, select=["RPR503"])
        assert result.findings == []

    def test_subprocess_under_lock_fires(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import subprocess
            import threading

            _lock = threading.Lock()

            def run():
                with _lock:
                    subprocess.run(["ls"])
            """}, select=["RPR503"])
        assert codes(result) == ["RPR503"]

    def test_pool_dispatch_under_lock_fires(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import threading

            from repro.runtime.executor import parallel_map

            _lock = threading.Lock()

            def run(items):
                with _lock:
                    return parallel_map(str, items)
            """}, select=["RPR503"])
        assert codes(result) == ["RPR503"]

    def test_blocking_outside_lock_is_silent(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import subprocess
            import threading

            _lock = threading.Lock()

            def run(future):
                with _lock:
                    pending = True
                out = subprocess.run(["ls"])
                return future.result()
            """}, select=["RPR503"])
        assert result.findings == []


class TestRPR504LockOrderCycles:
    BAD = {
        "a.py": """\
            import threading

            from b import other

            class A:
                def __init__(self):
                    self._lock = threading.Lock()

                def hit(self):
                    with self._lock:
                        other.poke()
            """,
        "b.py": """\
            import threading

            import a


            class B:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.peer = a.A()

                def poke(self):
                    with self._lock:
                        pass

                def reverse(self):
                    with self._lock:
                        self.peer.hit()


            other = B()
            """,
    }

    def test_cross_file_cycle_fires(self, tmp_path):
        result = lint_sources(tmp_path, dict(self.BAD), select=["RPR504"])
        assert codes(result) == ["RPR504"]
        msg = result.findings[0].message
        assert "A._lock" in msg and "B._lock" in msg

    def test_consistent_order_is_silent(self, tmp_path):
        # Same two classes, but B only ever takes its own lock: the
        # graph keeps the A → B edge and loses the back edge.
        files = dict(self.BAD)
        files["b.py"] = """\
            import threading


            class B:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        pass


            other = B()
            """
        result = lint_sources(tmp_path, files, select=["RPR504"])
        assert result.findings == []

    def test_graph_doc_names_the_cycle(self, tmp_path):
        for name, source in self.BAD.items():
            (tmp_path / name).write_text(textwrap.dedent(source))
        result = analyze_paths([str(tmp_path)], select=["RPR504"])
        doc = build_lock_graph(ProjectContext(result.contexts)).to_doc()
        assert doc["version"] == 1
        assert len(doc["cycles"]) == 1
        assert sorted(doc["cycles"][0]) == ["a.A._lock", "b.B._lock"]


class TestInfrastructure:
    def test_module_name_of_strips_src_prefix(self):
        assert module_name_of("src/repro/runtime/cache.py") == (
            "repro.runtime.cache"
        )
        assert module_name_of("/x/src/pkg/mod.py") == "pkg.mod"
        assert module_name_of("standalone.py") == "standalone"

    def test_sanitize_factories_count_as_locks(self, tmp_path):
        """Locks built via repro.runtime.sanitize wrappers join the
        guarded-by analysis exactly like raw threading ctors."""
        result = lint_sources(tmp_path, {"mod.py": """\
            from repro.runtime.sanitize import make_lock

            class Store:
                def __init__(self):
                    self._lock = make_lock("store")
                    self._items = {}

                def put(self, k, v):
                    with self._lock:
                        self._items[k] = v

                def wipe(self):
                    self._items = {}
            """}, select=["RPR501"])
        assert codes(result) == ["RPR501"]

    def test_noqa_silences_concurrency_finding(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, k, v):
                    with self._lock:
                        self._items[k] = v

                def wipe(self):
                    self._items = {}  # repro: noqa[RPR501]
            """}, select=["RPR501"])
        assert result.findings == []
        assert result.n_suppressed == 1

    def test_file_model_is_memoized(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import threading\n_lock = threading.Lock()\n")
        result = analyze_paths([str(path)], select=["RPR501"])
        ctx = result.contexts[0]
        assert file_model(ctx) is file_model(ctx)
