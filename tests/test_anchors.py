"""Tests for the PDC module catalog and anchor recommender."""

import pytest

from repro.anchors.modules import MODULE_CATALOG, PDCModule
from repro.anchors.recommender import (
    recommend_for_course,
    recommend_for_type,
    type_recommendation_table,
)
from repro.corpus.archetypes import ARCHETYPES
from repro.materials.course import Course
from repro.materials.material import Material, MaterialType


def course_with(tags):
    return Course("c", "C", materials=[
        Material("c/m", "m", MaterialType.LECTURE, frozenset(tags))
    ])


class TestCatalog:
    def test_resolves_and_caches(self):
        assert MODULE_CATALOG() is MODULE_CATALOG()
        assert len(MODULE_CATALOG()) >= 12

    def test_anchor_tags_are_cs2013(self, cs2013):
        for m in MODULE_CATALOG():
            for t in m.anchor_tags:
                assert t in cs2013 and cs2013[t].is_tag

    def test_taught_tags_are_pdc12(self, pdc12):
        for m in MODULE_CATALOG():
            for t in m.teaches_tags:
                assert t in pdc12 and pdc12[t].is_tag

    def test_target_flavors_exist(self):
        for m in MODULE_CATALOG():
            for f in m.target_flavors:
                assert f in ARCHETYPES

    def test_ids_unique(self):
        ids = [m.id for m in MODULE_CATALOG()]
        assert len(set(ids)) == len(ids)

    def test_module_validation(self):
        with pytest.raises(ValueError):
            PDCModule("x", "t", "d", (), ("p",))
        with pytest.raises(ValueError):
            PDCModule("x", "t", "d", ("a",), ())

    def test_section52_modules_present(self):
        ids = {m.id for m in MODULE_CATALOG()}
        assert {
            "reduction-ordering", "parallel-for-loops", "promise-concurrency",
            "distributed-objects", "thread-safe-collections", "cilk-brute-force",
            "dp-bottom-up-parallel", "dp-top-down-tasking", "task-graph-analysis",
            "list-scheduling-simulator", "concurrent-data-structures",
        } <= ids


class TestRecommender:
    def test_full_anchor_coverage_scores_one(self):
        module = MODULE_CATALOG()[0]
        c = course_with(module.anchor_tags)
        recs = recommend_for_course(c)
        top = next(r for r in recs.recommendations if r.module.id == module.id)
        assert top.anchor_coverage == pytest.approx(1.0)
        assert top.deployable
        assert not top.missing_anchors

    def test_empty_course_gets_nothing(self):
        recs = recommend_for_course(course_with([]))
        assert recs.recommendations == ()

    def test_flavor_bonus_boosts_targeted(self):
        module = next(m for m in MODULE_CATALOG() if m.target_flavors)
        c = course_with(module.anchor_tags)
        plain = recommend_for_course(c)
        boosted = recommend_for_course(c, flavors=module.target_flavors[:1])

        def score(recs):
            return next(
                r.score for r in recs.recommendations if r.module.id == module.id
            )

        assert score(boosted) > score(plain)

    def test_scores_sorted_desc(self, courses):
        recs = recommend_for_course(courses[0])
        scores = [r.score for r in recs.recommendations]
        assert scores == sorted(scores, reverse=True)

    def test_partial_coverage_fraction(self):
        module = next(m for m in MODULE_CATALOG() if len(m.anchor_tags) >= 4)
        half = module.anchor_tags[: len(module.anchor_tags) // 2]
        recs = recommend_for_course(course_with(half))
        rec = next(r for r in recs.recommendations if r.module.id == module.id)
        assert rec.anchor_coverage == pytest.approx(len(half) / len(module.anchor_tags))
        assert set(rec.covered_anchors) == set(half)
        assert not rec.deployable

    def test_min_score_filters(self):
        module = MODULE_CATALOG()[0]
        c = course_with(module.anchor_tags[:1])
        all_recs = recommend_for_course(c)
        strict = recommend_for_course(c, min_score=0.99)
        assert len(strict.recommendations) <= len(all_recs.recommendations)

    def test_top_n(self, courses):
        recs = recommend_for_course(courses[0])
        assert len(recs.top(2)) <= 2


class TestTypeRecommendations:
    def test_targeted_before_universal(self):
        mods = recommend_for_type("ds-combinatorial")
        ids = [m.id for m in mods]
        assert ids.index("cilk-brute-force") < ids.index("task-graph-analysis")

    def test_universal_modules_in_every_type(self):
        universal = {m.id for m in MODULE_CATALOG() if not m.target_flavors}
        for flavor in ("cs1-imperative", "ds-applications", "cs1-oop"):
            ids = {m.id for m in recommend_for_type(flavor)}
            assert universal <= ids

    def test_table_covers_all_flavors(self):
        table = type_recommendation_table(["cs1-oop", "ds-object-oriented"])
        assert set(table) == {"cs1-oop", "ds-object-oriented"}
        assert "thread-safe-collections" in table["ds-object-oriented"]

    def test_unknown_flavor_gets_universal_only(self):
        mods = recommend_for_type("not-a-flavor")
        assert all(not m.target_flavors for m in mods)
