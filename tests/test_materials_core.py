"""Tests for Material, Course, and MaterialRepository."""

import pytest

from repro.materials.course import Course, CourseLabel
from repro.materials.material import Material, MaterialRole, MaterialType, ROLE_OF_TYPE
from repro.materials.repository import MaterialRepository, SearchQuery


def mat(mid, tags, mtype=MaterialType.LECTURE, **kw):
    return Material(mid, mid, mtype, frozenset(tags), **kw)


class TestMaterial:
    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            Material("", "t", MaterialType.LECTURE)

    def test_mappings_coerced_to_frozenset(self):
        m = Material("m", "t", MaterialType.LAB, {"a", "b"})
        assert isinstance(m.mappings, frozenset)

    def test_every_type_has_a_role(self):
        assert set(ROLE_OF_TYPE) == set(MaterialType)

    @pytest.mark.parametrize("mtype,role", [
        (MaterialType.LECTURE, MaterialRole.DELIVERY),
        (MaterialType.ASSIGNMENT, MaterialRole.ACTIVITY),
        (MaterialType.EXAM, MaterialRole.ASSESSMENT),
        (MaterialType.LAB, MaterialRole.ACTIVITY),
    ])
    def test_role_mapping(self, mtype, role):
        assert Material("m", "t", mtype).role is role

    def test_with_mappings_returns_new(self):
        m = mat("m", ["a"])
        m2 = m.with_mappings({"b", "c"})
        assert m.mappings == frozenset({"a"})
        assert m2.mappings == frozenset({"b", "c"})
        assert m2.id == m.id

    def test_covers(self):
        m = mat("m", ["a"])
        assert m.covers("a") and not m.covers("b")


class TestCourse:
    def test_tag_set_is_union(self):
        c = Course("c", "C", materials=[mat("m1", ["a", "b"]), mat("m2", ["b", "c"])])
        assert c.tag_set() == frozenset({"a", "b", "c"})

    def test_tag_counts(self):
        c = Course("c", "C", materials=[mat("m1", ["a", "b"]), mat("m2", ["b"])])
        assert c.tag_counts() == {"a": 1, "b": 2}

    def test_duplicate_material_rejected_at_init(self):
        with pytest.raises(ValueError):
            Course("c", "C", materials=[mat("m", ["a"]), mat("m", ["b"])])

    def test_add_material_rejects_duplicate(self):
        c = Course("c", "C", materials=[mat("m", ["a"])])
        with pytest.raises(ValueError):
            c.add_material(mat("m", ["b"]))

    def test_tags_by_role(self):
        c = Course("c", "C", materials=[
            mat("lec", ["a", "b"], MaterialType.LECTURE),
            mat("hw", ["b", "c"], MaterialType.ASSIGNMENT),
            mat("ex", ["c"], MaterialType.EXAM),
        ])
        roles = c.tags_by_role()
        assert roles[MaterialRole.DELIVERY] == frozenset({"a", "b"})
        assert roles[MaterialRole.ACTIVITY] == frozenset({"b", "c"})
        assert roles[MaterialRole.ASSESSMENT] == frozenset({"c"})

    def test_materials_for_tag(self):
        m1, m2 = mat("m1", ["a"]), mat("m2", ["b"])
        c = Course("c", "C", materials=[m1, m2])
        assert c.materials_for_tag("a") == [m1]

    def test_labels(self):
        c = Course("c", "C", labels=frozenset({CourseLabel.CS1}))
        assert c.has_label(CourseLabel.CS1)
        assert not c.has_label(CourseLabel.DS)

    def test_repr_compact(self):
        c = Course("c", "C", materials=[mat("m", ["a"])])
        assert "n_materials=1" in repr(c)


class TestRepository:
    @pytest.fixture()
    def repo(self):
        r = MaterialRepository()
        r.add_material(mat("java-loops", ["t/loops"], MaterialType.LECTURE,
                           author="Saule", language="Java", course_level="CS1"))
        r.add_material(mat("c-loops", ["t/loops", "t/arrays"], MaterialType.ASSIGNMENT,
                           author="Bourke", language="C", course_level="CS1",
                           datasets=("earthquakes",)))
        r.add_material(mat("trees", ["t/trees"], MaterialType.LECTURE,
                           author="KRS", language="Java", course_level="DS"))
        return r

    def test_duplicate_material_rejected(self, repo):
        with pytest.raises(ValueError):
            repo.add_material(mat("java-loops", ["x"]))

    def test_lookup(self, repo):
        assert repo.material("trees").author == "KRS"
        with pytest.raises(KeyError):
            repo.material("missing")

    def test_search_by_tag_ranks_by_overlap(self, repo):
        hits = repo.search(SearchQuery(tags=frozenset({"t/loops"})))
        assert [h.material.id for h in hits] == ["java-loops", "c-loops"]
        assert hits[0].score > hits[1].score

    def test_search_filters_combine(self, repo):
        hits = repo.search(SearchQuery(tags=frozenset({"t/loops"}), language="C"))
        assert [h.material.id for h in hits] == ["c-loops"]

    def test_search_by_author_substring(self, repo):
        hits = repo.search(SearchQuery(author="bour"))
        assert [h.material.id for h in hits] == ["c-loops"]

    def test_search_by_dataset(self, repo):
        hits = repo.search(SearchQuery(dataset="earthquake"))
        assert [h.material.id for h in hits] == ["c-loops"]

    def test_search_by_type(self, repo):
        hits = repo.search(SearchQuery(mtype=MaterialType.LECTURE))
        assert {h.material.id for h in hits} == {"java-loops", "trees"}

    def test_search_by_text(self, repo):
        hits = repo.search(SearchQuery(text="tre"))
        assert [h.material.id for h in hits] == ["trees"]

    def test_search_limit(self, repo):
        hits = repo.search(SearchQuery(), limit=2)
        assert len(hits) == 2

    def test_search_expands_internal_nodes(self, small_tree):
        repo = MaterialRepository()
        repo.add_material(mat("m", ["G/A/U1/t-topic-alpha"]))
        hits = repo.search(SearchQuery(tags=frozenset({"G/A/U1"})), tree=small_tree)
        assert [h.material.id for h in hits] == ["m"]

    def test_find_similar(self, repo):
        sim = repo.find_similar("java-loops")
        assert sim[0].material.id == "c-loops"
        assert sim[0].score > sim[1].score

    def test_add_course_registers_materials(self):
        repo = MaterialRepository()
        c = Course("c", "C", materials=[mat("m1", ["a"])])
        repo.add_course(c)
        assert repo.n_materials == 1
        assert repo.course("c") is c

    def test_add_course_conflicting_material_rejected(self):
        repo = MaterialRepository()
        repo.add_material(mat("m1", ["a"]))
        c = Course("c", "C", materials=[mat("m1", ["DIFFERENT"])])
        with pytest.raises(ValueError, match="conflicting"):
            repo.add_course(c)

    def test_add_course_shared_material_accepted(self):
        repo = MaterialRepository()
        shared = mat("m1", ["a"])
        repo.add_course(Course("c1", "C1", materials=[shared]))
        repo.add_course(Course("c2", "C2", materials=[shared]))
        assert repo.n_materials == 1 and repo.n_courses == 2

    def test_duplicate_course_rejected(self):
        repo = MaterialRepository()
        repo.add_course(Course("c", "C"))
        with pytest.raises(ValueError):
            repo.add_course(Course("c", "C"))
