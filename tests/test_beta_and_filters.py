"""Tests for the PDC12 v2.0-beta delta and expectation-level search filters,
plus failure-injection robustness checks."""

import numpy as np
import pytest

from repro.curriculum.pdc12 import load_pdc12
from repro.curriculum.pdc12_beta import load_pdc12_beta, version_diff
from repro.factorization.nmf import NMF
from repro.materials.material import Material, MaterialType
from repro.materials.repository import MaterialRepository, SearchQuery
from repro.ontology.node import Bloom, Mastery
from repro.workshops import ClassificationNoise, WorkshopSeries, simulate_workshop_series


class TestPdc12Beta:
    def test_superset_of_base(self):
        base, beta = load_pdc12(), load_pdc12_beta()
        base_paths = {n.split("/", 1)[1] for n in base.node_ids() if "/" in n}
        beta_paths = {n.split("/", 1)[1] for n in beta.node_ids() if "/" in n}
        assert base_paths <= beta_paths

    def test_diff_counts(self):
        d = version_diff()
        assert d.n_added_topics > 5
        assert d.beta_tag_count == d.base_tag_count + d.n_added_topics
        assert len(d.added_units) == 5

    def test_added_topics_exist_in_beta(self):
        beta = load_pdc12_beta()
        for t in version_diff().added_topics:
            assert t in beta and beta[t].is_tag

    def test_beta_keeps_four_areas(self):
        beta = load_pdc12_beta()
        assert [a.meta["code"] for a in beta.areas()] == ["ARCH", "PROG", "ALGO", "XCUT"]

    def test_energy_unit_added(self):
        beta = load_pdc12_beta()
        assert "PDC12B/ARCH/ENERGY" in beta
        assert "PDC12/ARCH/ENERGY".replace("PDC12", "PDC12") not in load_pdc12()

    def test_validates(self):
        load_pdc12_beta().validate()


class TestExpectationFilters:
    @pytest.fixture()
    def repo(self, cs2013, pdc12):
        r = MaterialRepository()
        usage_outcome = next(
            t.id for t in cs2013.tags() if t.mastery is Mastery.USAGE
        )
        fam_outcome = next(
            t.id for t in cs2013.tags() if t.mastery is Mastery.FAMILIARITY
        )
        apply_topic = next(t.id for t in pdc12.tags() if t.bloom is Bloom.APPLY)
        know_topic = next(t.id for t in pdc12.tags() if t.bloom is Bloom.KNOW)
        r.add_material(Material("deep", "deep", MaterialType.ASSIGNMENT,
                                frozenset({usage_outcome})))
        r.add_material(Material("shallow", "shallow", MaterialType.LECTURE,
                                frozenset({fam_outcome})))
        r.add_material(Material("applied-pdc", "applied", MaterialType.LAB,
                                frozenset({apply_topic})))
        r.add_material(Material("know-pdc", "know", MaterialType.LECTURE,
                                frozenset({know_topic})))
        return r

    def test_min_mastery(self, repo, cs2013):
        hits = repo.search(SearchQuery(min_mastery=Mastery.USAGE), tree=cs2013)
        assert {h.material.id for h in hits} == {"deep"}

    def test_min_mastery_low_bar_includes_all_outcomes(self, repo, cs2013):
        hits = repo.search(SearchQuery(min_mastery=Mastery.FAMILIARITY), tree=cs2013)
        assert {"deep", "shallow"} <= {h.material.id for h in hits}

    def test_min_bloom(self, repo, pdc12):
        hits = repo.search(SearchQuery(min_bloom=Bloom.APPLY), tree=pdc12)
        assert {h.material.id for h in hits} == {"applied-pdc"}

    def test_filters_require_tree(self, repo):
        with pytest.raises(ValueError, match="require a guideline tree"):
            repo.search(SearchQuery(min_mastery=Mastery.USAGE))

    def test_combines_with_tag_filter(self, repo, cs2013):
        hits = repo.search(
            SearchQuery(min_mastery=Mastery.ASSESSMENT), tree=cs2013
        )
        assert all(h.material.id != "shallow" for h in hits)


class TestFailureInjection:
    def test_nmf_on_zero_matrix(self):
        for solver in ("mu", "hals"):
            m = NMF(2, solver=solver, seed=0)
            w = m.fit_transform(np.zeros((5, 7)))
            assert np.isfinite(w).all()
            assert np.isfinite(m.components_).all()
            assert m.reconstruction_err_ == pytest.approx(0.0, abs=1e-6)

    def test_nmf_on_single_row(self):
        m = NMF(1, solver="hals", seed=0)
        w = m.fit_transform(np.array([[1.0, 2.0, 3.0]]))
        assert w.shape == (1, 1)

    def test_extreme_drop_noise_pipeline_survives(self, cs2013):
        res = simulate_workshop_series(
            WorkshopSeries(cs2013, noise=ClassificationNoise(0.9, 0.05)),
            seed=2,
        )
        assert len(res.retained) == 20
        # Courses may be nearly empty but the structures stay consistent.
        for c in res.retained:
            for m in c.materials:
                assert all(t in cs2013 for t in m.mappings)

    def test_extreme_displacement_keeps_tree_membership(self, cs2013, rng):
        noise = ClassificationNoise(0.0, 0.8)
        tags = frozenset(cs2013.tag_ids()[:40])
        material = Material("m", "m", MaterialType.LECTURE, tags)
        out = noise.apply(material, cs2013, rng)
        assert all(t in cs2013 for t in out.mappings)
