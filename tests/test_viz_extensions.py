"""Tests for the Gantt and text-tree renderers."""

import pytest

from repro.materials.hittree import build_hit_tree, alignment_hit_tree
from repro.materials.material import Material, MaterialType
from repro.taskgraph import TaskGraph, layered_random_dag, list_schedule
from repro.viz.gantt import ascii_gantt
from repro.viz.treetext import render_hit_tree_text, render_tree_text


class TestGantt:
    def test_line_per_processor(self):
        g = layered_random_dag(3, 4, seed=0)
        s = list_schedule(g, 3)
        out = ascii_gantt(s, width=50)
        lines = out.splitlines()
        assert len(lines) == 3 + 2  # processors + frame + time scale
        assert lines[0].startswith("P0")

    def test_empty_schedule(self):
        s = list_schedule(TaskGraph({}), 2)
        assert "(empty schedule)" in ascii_gantt(s)

    def test_busy_processor_has_no_leading_idle(self):
        g = TaskGraph({"a": 4.0})
        s = list_schedule(g, 1)
        row = ascii_gantt(s, width=40).splitlines()[0]
        body = row.split("|")[1]
        assert "." not in body  # single task fills the whole makespan

    def test_width_validated(self):
        g = TaskGraph({"a": 1.0})
        with pytest.raises(ValueError):
            ascii_gantt(list_schedule(g, 1), width=5)

    def test_idle_shown_when_parallel(self):
        # Two tasks of unequal size on two processors -> idle tail on one.
        g = TaskGraph({"a": 1.0, "b": 10.0})
        s = list_schedule(g, 2)
        out = ascii_gantt(s, width=40)
        assert "." in out


class TestTreeText:
    def test_connector_structure(self, small_tree):
        out = render_tree_text(small_tree)
        assert out.splitlines()[0] == "Tiny guideline"
        assert "├─ " in out and "└─ " in out
        assert len(out.splitlines()) == len(small_tree)

    def test_custom_labels(self, small_tree):
        out = render_tree_text(small_tree, label_of=lambda nid: nid)
        assert "G/A/U1" in out

    def test_truncation(self, small_tree):
        out = render_tree_text(small_tree, max_label=5)
        assert "…" in out

    def test_hit_tree_weights_shown(self, small_tree):
        mats = [Material("m", "m", MaterialType.LECTURE,
                         frozenset({"G/A/U1/t-topic-alpha"}))]
        ht = build_hit_tree(mats, small_tree)
        out = render_hit_tree_text(ht)
        assert "[1]" in out

    def test_alignment_colors_shown(self, small_tree):
        a = [Material("a", "a", MaterialType.LECTURE,
                      frozenset({"G/A/U1/t-topic-alpha"}))]
        b = [Material("b", "b", MaterialType.EXAM,
                      frozenset({"G/B/U3/t-topic-delta"}))]
        ht = alignment_hit_tree(a, b, small_tree)
        out = render_hit_tree_text(ht)
        assert "(-1.00)" in out and "(+1.00)" in out


class TestAsciiScatter:
    def test_empty(self):
        from repro.viz.ascii import ascii_scatter
        assert ascii_scatter({}) == "(no points)"

    def test_framed_grid(self):
        from repro.viz.ascii import ascii_scatter
        out = ascii_scatter({"aa": (0.0, 0.0), "bb": (1.0, 1.0)},
                            width=20, height=6)
        lines = out.splitlines()
        assert lines[0].startswith("+") and lines[-1].startswith("+")
        assert len(lines) == 8
        assert all(len(l) == 22 for l in lines)

    def test_extremes_placed_at_corners(self):
        from repro.viz.ascii import ascii_scatter
        out = ascii_scatter({"lo": (0.0, 0.0), "hi": (1.0, 1.0)},
                            width=10, height=5, label_points=False)
        lines = out.splitlines()[1:-1]
        assert lines[0][1] == " " and lines[0][-2] == "o"   # hi at top-right
        assert lines[-1][1] == "o"                          # lo at bottom-left

    def test_degenerate_single_point(self):
        from repro.viz.ascii import ascii_scatter
        out = ascii_scatter({"only": (3.0, 3.0)}, width=12, height=5)
        assert "o" in out

    def test_too_small_rejected(self):
        import pytest as _pytest
        from repro.viz.ascii import ascii_scatter
        with _pytest.raises(ValueError):
            ascii_scatter({"a": (0, 0)}, width=4, height=2)
