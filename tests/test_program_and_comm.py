"""Tests for program-level coverage analysis and communication-aware scheduling."""

import pytest

from repro.analysis.program import analyze_program, pdc_gap
from repro.materials.course import Course, CourseLabel
from repro.materials.material import Material, MaterialType
from repro.ontology.node import Tier
from repro.taskgraph import (
    TaskGraph,
    layered_random_dag,
    list_schedule,
    list_schedule_comm,
    validate_comm_schedule,
)


def mk_course(cid, tags):
    return Course(cid, cid, materials=[
        Material(f"{cid}/m", "m", MaterialType.LECTURE, frozenset(tags)),
    ])


class TestProgramCoverage:
    def test_union_coverage(self, small_tree):
        a = mk_course("a", ["G/A/U1/t-topic-alpha"])
        b = mk_course("b", ["G/A/U2/t-topic-gamma"])
        prog = analyze_program([a, b], small_tree)
        assert prog.n_covered == 2
        assert prog.by_area["A"] == (2, 4)

    def test_core_rules(self, small_tree):
        # Cover all core1 (alpha + its outcome) and the single core2 tags.
        all_core = [
            t.id for t in small_tree.tags() if t.tier in (Tier.CORE1, Tier.CORE2)
        ]
        prog = analyze_program([mk_course("a", all_core)], small_tree)
        assert prog.core1_coverage == 1.0
        assert prog.core2_coverage == 1.0
        assert prog.meets_core_requirements()

    def test_missing_core1_fails(self, small_tree):
        prog = analyze_program([mk_course("a", ["G/A/U1/t-topic-beta"])], small_tree)
        assert prog.core1_missing
        assert not prog.meets_core_requirements()

    def test_empty_program_rejected(self, small_tree):
        with pytest.raises(ValueError):
            analyze_program([], small_tree)

    def test_canonical_program_fails_core(self, courses, cs2013):
        # 20 early courses do not cover 100% of CS2013 core-1 — expected.
        prog = analyze_program(list(courses), cs2013)
        assert 0.5 < prog.core1_coverage < 1.0
        assert not prog.meets_core_requirements()

    def test_pdc_gap_shrinks_with_pdc_courses(self, courses, cs2013):
        pdc_ids = {c.id for c in courses if CourseLabel.PDC in c.labels}
        without = [c for c in courses if c.id not in pdc_ids]
        gap_without = pdc_gap(without, cs2013)
        gap_with = pdc_gap(list(courses), cs2013)
        assert len(gap_with) < len(gap_without)
        assert all(t.startswith("CS2013/PD/") for t in gap_without)

    def test_pdc_gap_core_only_flag(self, courses, cs2013):
        core = pdc_gap(list(courses), cs2013, core_only=True)
        everything = pdc_gap(list(courses), cs2013, core_only=False)
        assert set(core) <= set(everything)

    def test_gap_for_other_area(self, courses, cs2013):
        gap = pdc_gap(list(courses), cs2013, area_code="NC")
        assert all(t.startswith("CS2013/NC/") for t in gap)


class TestCommScheduling:
    @pytest.fixture()
    def graph(self):
        return layered_random_dag(5, 6, seed=3)

    def test_zero_delay_matches_baseline_model(self, graph):
        s = list_schedule_comm(graph, 4, comm_delay=0.0)
        validate_comm_schedule(s, 0.0)
        base = list_schedule(graph, 4)
        # Same greedy family: makespans agree within a small factor.
        assert s.makespan <= base.makespan * 1.25 + 1e-9
        assert s.makespan >= graph.span() - 1e-9

    def test_delay_never_helps(self, graph):
        prev = 0.0
        for delay in (0.0, 1.0, 5.0, 25.0):
            s = list_schedule_comm(graph, 4, comm_delay=delay)
            validate_comm_schedule(s, delay)
            assert s.makespan >= prev - 1e-9
            prev = s.makespan

    def test_huge_delay_approaches_serial(self, graph):
        s = list_schedule_comm(graph, 4, comm_delay=1e6)
        validate_comm_schedule(s, 1e6)
        # The scheduler should keep chains local rather than paying the
        # delay: makespan stays below work + a few delays, and in practice
        # collapses toward serial execution.
        assert s.speedup() <= 2.0

    def test_single_processor_no_comm_cost(self, graph):
        s = list_schedule_comm(graph, 1, comm_delay=100.0)
        validate_comm_schedule(s, 100.0)
        assert s.makespan == pytest.approx(graph.work())

    def test_chain_stays_on_one_processor(self):
        chain = TaskGraph.from_edges(
            {"a": 1.0, "b": 1.0, "c": 1.0}, [("a", "b"), ("b", "c")]
        )
        s = list_schedule_comm(chain, 4, comm_delay=10.0)
        validate_comm_schedule(s, 10.0)
        procs = {p.processor for p in s.placements}
        assert len(procs) == 1
        assert s.makespan == pytest.approx(3.0)

    def test_validation_catches_violation(self, graph):
        s = list_schedule_comm(graph, 4, comm_delay=0.0)
        with pytest.raises(ValueError):
            # Claiming a big delay against a zero-delay schedule must fail
            # somewhere (some cross-processor edge exists in this graph).
            validate_comm_schedule(s, 50.0)

    def test_parameter_validation(self, graph):
        with pytest.raises(ValueError):
            list_schedule_comm(graph, 0)
        with pytest.raises(ValueError):
            list_schedule_comm(graph, 2, comm_delay=-1.0)
        with pytest.raises(ValueError):
            list_schedule_comm(graph, 2, policy="nope")
