"""Tests for the Markdown report builder."""

import dataclasses
import inspect

import pytest

from repro.cli import main
from repro.report import ReportConfig, build_report, build_report_direct


@pytest.fixture(scope="module")
def report_text(dataset_module):
    tree, courses = dataset_module
    return build_report(list(courses), tree, title="Test report")


@pytest.fixture(scope="module")
def dataset_module():
    from repro.canonical import load_canonical_dataset
    tree, courses, _ = load_canonical_dataset()
    return tree, courses


class TestBuildReport:
    def test_title_and_sections(self, report_text):
        assert report_text.startswith("# Test report")
        for section in (
            "## Dataset",
            "## Course types",
            "## Agreement",
            "### CS1 agreement",
            "### DS agreement",
            "## CS1 flavors",
            "## Data Structures flavors",
            "## PDC anchor recommendations",
            "## Program-level coverage",
        ):
            assert section in report_text, section

    def test_every_course_listed(self, report_text, dataset_module):
        _, courses = dataset_module
        for c in courses:
            assert c.id in report_text

    def test_markdown_tables_well_formed(self, report_text):
        lines = report_text.splitlines()
        for i, line in enumerate(lines):
            if set(line.replace("|", "").replace("-", "").strip()) == set():
                continue
            if line.startswith("|") and "---" in line:
                # Separator rows match their header's column count.
                header_cols = lines[i - 1].count("|")
                assert line.count("|") == header_cols

    def test_deterministic(self, dataset_module):
        tree, courses = dataset_module
        a = build_report(list(courses), tree)
        b = build_report(list(courses), tree)
        assert a == b

    def test_config_seeds_change_typing(self, dataset_module):
        tree, courses = dataset_module
        a = build_report(list(courses), tree, config=ReportConfig(typing_seed=1))
        # Different seed: report still renders (content may legitimately match).
        b = build_report(list(courses), tree, config=ReportConfig(typing_seed=2))
        assert b.startswith("# ")
        assert len(b) > 1000 and len(a) > 1000

    def test_empty_rejected(self, dataset_module):
        tree, _ = dataset_module
        with pytest.raises(ValueError):
            build_report([], tree)


class TestConfigDefault:
    """Regression: ``config`` must not default to a shared instance.

    A ``config: ReportConfig = ReportConfig()`` default is evaluated once
    at import and shared by every call; the in-body ``config=None``
    default plus the frozen dataclass make that class of bug impossible.
    """

    def test_signature_defaults_are_none(self):
        for fn in (build_report, build_report_direct):
            assert inspect.signature(fn).parameters["config"].default is None, fn

    def test_config_is_frozen(self):
        cfg = ReportConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.k_all = 99

    def test_explicit_default_config_matches_none(self, dataset_module):
        tree, courses = dataset_module
        assert build_report(
            list(courses), tree, config=ReportConfig(), engine="direct"
        ) == build_report(list(courses), tree, config=None, engine="direct")


class TestReportCli:
    def test_report_to_file(self, tmp_path):
        corpus = tmp_path / "c.json"
        main(["canonical", "--out", str(corpus)])
        out = tmp_path / "r.md"
        assert main(["report", str(corpus), "--out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# Course corpus analysis")

    def test_report_to_stdout(self, tmp_path, capsys):
        corpus = tmp_path / "c.json"
        main(["canonical", "--out", str(corpus)])
        capsys.readouterr()
        assert main(["report", str(corpus), "--title", "Stdout run"]) == 0
        assert "# Stdout run" in capsys.readouterr().out
