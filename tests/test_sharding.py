"""Shard/flat bit-equivalence suite (PR 7).

The contract of :mod:`repro.materials.sharding` is exact: every query
answered by :class:`ShardedMaterialRepository` — ``search``,
``search_many``, ``find_similar``, ``similarity_matrix``, ``stats`` —
must be **bit-identical** to a flat :class:`MaterialRepository` fed the
same corpus in the same order, for any shard count.  These tests drive
both over a ~2k-material synthetic corpus at 1/2/8 shards, and check
that ingestion accounting (retained/excluded split, exclusion reasons)
is preserved both for direct ``ingest`` and for chunked streaming via
:func:`repro.corpus.stream.ingest_stream` at any chunk size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.stream import StreamIngestReport, generate_stream, ingest_stream
from repro.io.json_io import course_to_dict
from repro.materials import (
    MaterialRepository,
    SearchQuery,
    ShardedMaterialRepository,
    shard_of,
)
from repro.materials.course import Course
from repro.materials.material import Material, MaterialType
from repro.runtime.metrics import metrics


@pytest.fixture(scope="module")
def corpus2k(cs2013):
    """~2k materials streamed from the scaled generator."""
    return list(generate_stream(cs2013, seed=11, n_materials=2000))


def _fill(repo, courses):
    for c in courses:
        repo.add_course(c)
    return repo


def _pair(courses, n_shards, **kw):
    flat = _fill(MaterialRepository(), courses)
    sharded = _fill(ShardedMaterialRepository(n_shards, **kw), courses)
    return flat, sharded


def _key(hits):
    return [(h.material.id, h.score) for h in hits]


def _queries(cs2013, seed=29):
    rng = np.random.default_rng(seed)
    tag_ids = cs2013.tag_ids()
    out = [SearchQuery()]
    for k in (1, 2, 4):
        for _ in range(5):
            out.append(SearchQuery(
                tags=frozenset(rng.choice(tag_ids, size=k, replace=False).tolist())
            ))
    out.append(SearchQuery(text="lecture"))
    out.append(SearchQuery(text="zzz-no-such-material"))
    out.append(SearchQuery(tags=frozenset({tag_ids[0]}), text="lab"))
    return out


class TestShardOf:
    def test_stable_and_order_independent(self):
        assert shard_of("mat-1", 8) == shard_of("mat-1", 8)
        assert 0 <= shard_of("anything", 5) < 5
        assert shard_of("x", 1) == 0

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            shard_of("m", 0)
        with pytest.raises(ValueError, match=">= 1"):
            ShardedMaterialRepository(0)

    def test_partition_is_total(self, corpus2k):
        sharded = _fill(ShardedMaterialRepository(8), corpus2k)
        assert sum(sharded.shard_sizes()) == sharded.n_materials
        # sha256 spreads ids: no shard owns everything at 2k materials.
        assert max(sharded.shard_sizes()) < sharded.n_materials


class TestQueryEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 8])
    def test_search_grid(self, corpus2k, cs2013, n_shards):
        flat, sharded = _pair(corpus2k, n_shards)
        for q in _queries(cs2013):
            for limit in (None, 0, 5):
                assert _key(sharded.search(q, tree=cs2013, limit=limit)) == \
                    _key(flat.search(q, tree=cs2013, limit=limit)), (q, limit)

    @pytest.mark.parametrize("n_shards", [1, 2, 8])
    def test_search_many(self, corpus2k, cs2013, n_shards):
        flat, sharded = _pair(corpus2k, n_shards)
        qs = _queries(cs2013, seed=31)
        got = sharded.search_many(qs, tree=cs2013, limit=7)
        want = flat.search_many(qs, tree=cs2013, limit=7)
        assert [_key(h) for h in got] == [_key(h) for h in want]
        assert sharded.search_many([], tree=cs2013) == []

    @pytest.mark.parametrize("n_shards", [1, 2, 8])
    def test_find_similar(self, corpus2k, n_shards):
        flat, sharded = _pair(corpus2k, n_shards)
        rng = np.random.default_rng(5)
        ids = [m.id for m in flat.materials()]
        for mid in rng.choice(ids, size=12, replace=False).tolist():
            for limit in (1, 10):
                assert _key(sharded.find_similar(mid, limit=limit)) == \
                    _key(flat.find_similar(mid, limit=limit)), mid

    @pytest.mark.parametrize("n_shards", [2, 8])
    def test_similarity_matrix_and_stats(self, corpus2k, n_shards):
        flat, sharded = _pair(corpus2k, n_shards)
        for metric in ("jaccard", "cosine"):
            assert np.array_equal(
                sharded.similarity_matrix(metric=metric),
                flat.similarity_matrix(metric=metric),
            )
        assert sharded.stats() == flat.stats()
        assert [m.id for m in sharded.materials()] == [
            m.id for m in flat.materials()
        ]

    def test_pool_fanout_matches_serial(self, corpus2k, cs2013):
        # workers=2 pushes the shard payloads through the real process
        # pool (pickling the per-shard repositories); results must not
        # change.
        serial = _fill(ShardedMaterialRepository(4), corpus2k)
        pooled = _fill(ShardedMaterialRepository(4, workers=2), corpus2k)
        qs = _queries(cs2013, seed=37)[:6]
        assert [_key(h) for h in pooled.search_many(qs, tree=cs2013, limit=5)] \
            == [_key(h) for h in serial.search_many(qs, tree=cs2013, limit=5)]
        mid = next(iter(m.id for m in serial.materials()))
        assert _key(pooled.find_similar(mid)) == _key(serial.find_similar(mid))

    def test_validation_mirrors_flat(self, corpus2k):
        _, sharded = _pair(corpus2k[:3], 4)
        with pytest.raises(ValueError, match=">= 0"):
            sharded.search(SearchQuery(), limit=-1)
        with pytest.raises(ValueError, match=">= 1"):
            sharded.find_similar(corpus2k[0].materials[0].id, limit=0)
        with pytest.raises(KeyError, match="no material"):
            sharded.material("nope")
        with pytest.raises(KeyError, match="no course"):
            sharded.course("nope")


def _dirty_roster(courses):
    """Clean courses plus a duplicate course id and a conflicting material."""
    clean = list(courses[:40])
    dup = Course(clean[0].id, "Duplicate id", materials=[
        Material("dup-m", "Dup", MaterialType.LAB, frozenset()),
    ])
    existing = clean[1].materials[0]
    conflict = Course("conflict-course", "Conflict", materials=[
        Material(existing.id, existing.title + " (edited)", existing.mtype,
                 existing.mappings),
    ])
    return clean + [dup, conflict]


class TestIngestAccounting:
    def test_flat_and_sharded_agree(self, corpus2k):
        roster = _dirty_roster(corpus2k)
        flat_report = MaterialRepository().ingest(roster)
        shard_report = ShardedMaterialRepository(8).ingest(roster)
        assert [c.id for c in shard_report.retained] == [
            c.id for c in flat_report.retained
        ]
        assert [(e.course_id, e.reason) for e in shard_report.excluded] == [
            (e.course_id, e.reason) for e in flat_report.excluded
        ]
        assert shard_report.reasons == {
            "duplicate-course-id": 1,
            "conflicting-material-id": 1,
        }

    def test_strict_raises_and_commits_nothing_extra(self, corpus2k):
        roster = _dirty_roster(corpus2k)
        sharded = ShardedMaterialRepository(4)
        with pytest.raises(ValueError, match="malformed"):
            sharded.ingest(roster, strict=True)
        # Clean prefix is retained; the rejected courses left no trace.
        assert sharded.n_courses == 40
        assert "dup-m" not in {m.id for m in sharded.materials()}


class TestChunkedStreaming:
    @pytest.mark.parametrize("chunk_size", [1, 7, 100])
    def test_accounting_chunk_size_invariant(self, corpus2k, chunk_size):
        records = [course_to_dict(c) for c in corpus2k[:60]]
        records.insert(10, {"title": "no id here"})
        records.insert(30, records[0])  # duplicate course id
        baseline = ingest_stream(
            MaterialRepository(), records, chunk_size=len(records)
        )
        metrics.reset()
        repo = ShardedMaterialRepository(4)
        report = ingest_stream(repo, records, chunk_size=chunk_size)
        assert isinstance(report, StreamIngestReport)
        assert report.retained_ids == baseline.retained_ids
        assert report.reasons == baseline.reasons
        assert report.reasons == {"missing-id": 1, "duplicate-course-id": 1}
        assert report.n_seen == len(records)
        assert len(report.chunks) == -(-len(records) // chunk_size)
        assert metrics.get("corpus.stream.chunks") == len(report.chunks)
        assert repo.n_courses == report.n_retained
        # Chunk ledger sums to the global split.
        assert sum(c["retained"] for c in report.chunks) == report.n_retained
        assert sum(c["excluded"] for c in report.chunks) == report.n_excluded

    def test_strict_mode_raises_after_accounting(self, corpus2k):
        records = [course_to_dict(c) for c in corpus2k[:5]] + [{"title": "bad"}]
        with pytest.raises(ValueError, match="malformed"):
            ingest_stream(
                ShardedMaterialRepository(2), records, chunk_size=2,
                strict=True,
            )


class TestResidentPool:
    """Worker-resident shards (PR 8): state lives in the workers.

    The legacy fan-out pickles whole shard repositories into the pool on
    *every* query; the resident pool installs each shard once at worker
    start and ships only (shard_id, query) payloads afterwards.  The
    contract: identical results to the flat repository, a bytes-shipped
    counter that stays tiny, crash rehydration, and no orphaned workers.
    """

    @pytest.fixture()
    def resident_pair(self, corpus2k, cs2013):
        flat, sharded = _pair(corpus2k, 3)
        sharded.start_resident(trees=[cs2013])
        try:
            yield flat, sharded
        finally:
            sharded.close_resident()

    def test_queries_match_flat(self, resident_pair, cs2013):
        flat, sharded = resident_pair
        qs = _queries(cs2013, seed=43)
        assert [_key(h) for h in sharded.search_many(qs, tree=cs2013, limit=6)] \
            == [_key(h) for h in flat.search_many(qs, tree=cs2013, limit=6)]
        for q in qs[:4]:
            assert _key(sharded.search(q, tree=cs2013, limit=5)) == \
                _key(flat.search(q, tree=cs2013, limit=5))
        mid = next(m.id for m in flat.materials())
        assert _key(sharded.find_similar(mid, limit=8)) == \
            _key(flat.find_similar(mid, limit=8))

    def test_no_per_query_shard_pickling(self, resident_pair, cs2013):
        import pickle

        _, sharded = resident_pair
        metrics.reset()
        qs = _queries(cs2013, seed=47)[:10]
        sharded.search_many(qs, tree=cs2013, limit=5)
        shipped = metrics.get("shard.resident.bytes_shipped")
        n_queries = metrics.get("shard.resident.queries")
        assert n_queries == sharded.n_shards  # one payload per shard
        # a single legacy fan-out payload pickles the whole shard repo;
        # the resident path must ship orders of magnitude less
        one_shard = len(pickle.dumps(sharded.shards[0]))
        assert 0 < shipped < one_shard

    def test_mutation_refreshes_workers(self, resident_pair, cs2013):
        flat, sharded = resident_pair
        tag = cs2013.tag_ids()[0]
        new = Material(
            id="resident-new-mat", title="freshly placed",
            mtype=MaterialType.LAB, mappings=frozenset({tag}),
        )
        flat.add_material(new)
        sharded.add_material(new)
        q = SearchQuery(tags=frozenset({tag}))
        got = _key(sharded.search(q, tree=cs2013, limit=None))
        assert got == _key(flat.search(q, tree=cs2013, limit=None))
        assert "resident-new-mat" in [mat_id for mat_id, _ in got]
        assert metrics.get("shard.resident.refresh") >= 1

    def test_worker_crash_rehydrates_with_same_results(
        self, resident_pair, cs2013
    ):
        import os
        import signal

        flat, sharded = resident_pair
        q = SearchQuery(text="lecture")
        want = _key(flat.search(q, tree=cs2013, limit=9))
        assert _key(sharded.search(q, tree=cs2013, limit=9)) == want
        for pid in sharded.resident.pids():
            os.kill(pid, signal.SIGKILL)
        assert _key(sharded.search(q, tree=cs2013, limit=9)) == want
        # rehydrated workers are new processes
        assert all(pid for pid in sharded.resident.pids())

    def test_close_reaps_workers(self, corpus2k, cs2013):
        import os

        sharded = _fill(ShardedMaterialRepository(2), corpus2k[:6])
        pids = sharded.start_resident(trees=[cs2013])
        assert len(pids) == 2
        sharded.close_resident()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        assert sharded.resident is None
        # queries still work via the legacy fan-out path
        assert isinstance(
            sharded.search(SearchQuery(text="x"), tree=cs2013, limit=3), list
        )

    def test_double_start_rejected(self, corpus2k, cs2013):
        sharded = _fill(ShardedMaterialRepository(2), corpus2k[:6])
        sharded.start_resident(trees=[cs2013])
        try:
            with pytest.raises(RuntimeError, match="already attached"):
                sharded.start_resident(trees=[cs2013])
        finally:
            sharded.close_resident()

    def test_unregistered_tree_ships_inline(self, corpus2k, cs2013, pdc12):
        # querying with a tree the pool was not started with must still
        # work (shipped inline with the payload) and stay correct
        flat, sharded = _pair(corpus2k[:10], 2)
        sharded.start_resident(trees=[cs2013])
        try:
            metrics.reset()
            q = SearchQuery(text="lab")
            assert _key(sharded.search(q, tree=pdc12, limit=5)) == \
                _key(flat.search(q, tree=pdc12, limit=5))
            assert metrics.get("shard.resident.tree_inline") >= 1
        finally:
            sharded.close_resident()


class TestRebalancing:
    """Dead-worker rebalancing (PR 10): shards move, results do not.

    A resident worker that is gone for good (closed, or crashed past
    its retry budget) must not take its shards down with it: the pool
    reassigns them round-robin to the survivors, the failed query
    retries once on the new owner, and every result stays bit-identical
    to the flat repository.
    """

    @pytest.fixture()
    def resident_pair(self, corpus2k, cs2013):
        flat, sharded = _pair(corpus2k, 3)
        sharded.start_resident(trees=[cs2013])
        try:
            yield flat, sharded
        finally:
            sharded.close_resident()

    def test_dead_worker_shards_served_by_survivors(
        self, resident_pair, cs2013
    ):
        flat, sharded = resident_pair
        pool = sharded.resident
        q = SearchQuery(text="lecture")
        want = _key(flat.search(q, tree=cs2013, limit=9))
        assert _key(sharded.search(q, tree=cs2013, limit=9)) == want

        # a force-closed worker is dead for good (no rehydration), so
        # the next fan-out must rebalance instead of recovering it
        pool._workers[0].close(force=True)
        metrics.reset()
        assert _key(sharded.search(q, tree=cs2013, limit=9)) == want
        assert metrics.get("shard.resident.rebalance") >= 1
        assert metrics.get("shard.resident.worker_dead") == 1
        assert pool.dead_workers() == [0]
        assignment = pool.assignment()
        assert assignment[0] != 0  # shard 0 has a new owner
        assert set(assignment.values()) <= {1, 2}

        # steady state: queries keep flowing through the survivors
        # with no further rebalancing and no parent-local fallback
        metrics.reset()
        for query in _queries(cs2013, seed=53)[:6]:
            assert _key(sharded.search(query, tree=cs2013, limit=7)) == \
                _key(flat.search(query, tree=cs2013, limit=7))
        assert metrics.get("shard.resident.rebalance") == 0
        assert metrics.get("shard.resident.local_fallback") == 0

    def test_all_workers_dead_falls_back_to_parent(
        self, resident_pair, cs2013
    ):
        flat, sharded = resident_pair
        pool = sharded.resident
        for worker in pool._workers:
            worker.close(force=True)
        q = SearchQuery(text="lab")
        assert _key(sharded.search(q, tree=cs2013, limit=8)) == \
            _key(flat.search(q, tree=cs2013, limit=8))
        assert metrics.get("shard.resident.local_fallback") >= 1

    def test_find_similar_survives_rebalance(self, resident_pair, cs2013):
        flat, sharded = resident_pair
        mid = next(m.id for m in flat.materials())
        want = _key(flat.find_similar(mid, limit=8))
        sharded.resident._workers[1].close(force=True)
        assert _key(sharded.find_similar(mid, limit=8)) == want
        assert sharded.resident.dead_workers() == [1]
