"""Shard/flat bit-equivalence suite (PR 7).

The contract of :mod:`repro.materials.sharding` is exact: every query
answered by :class:`ShardedMaterialRepository` — ``search``,
``search_many``, ``find_similar``, ``similarity_matrix``, ``stats`` —
must be **bit-identical** to a flat :class:`MaterialRepository` fed the
same corpus in the same order, for any shard count.  These tests drive
both over a ~2k-material synthetic corpus at 1/2/8 shards, and check
that ingestion accounting (retained/excluded split, exclusion reasons)
is preserved both for direct ``ingest`` and for chunked streaming via
:func:`repro.corpus.stream.ingest_stream` at any chunk size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.stream import StreamIngestReport, generate_stream, ingest_stream
from repro.io.json_io import course_to_dict
from repro.materials import (
    MaterialRepository,
    SearchQuery,
    ShardedMaterialRepository,
    shard_of,
)
from repro.materials.course import Course
from repro.materials.material import Material, MaterialType
from repro.runtime.metrics import metrics


@pytest.fixture(scope="module")
def corpus2k(cs2013):
    """~2k materials streamed from the scaled generator."""
    return list(generate_stream(cs2013, seed=11, n_materials=2000))


def _fill(repo, courses):
    for c in courses:
        repo.add_course(c)
    return repo


def _pair(courses, n_shards, **kw):
    flat = _fill(MaterialRepository(), courses)
    sharded = _fill(ShardedMaterialRepository(n_shards, **kw), courses)
    return flat, sharded


def _key(hits):
    return [(h.material.id, h.score) for h in hits]


def _queries(cs2013, seed=29):
    rng = np.random.default_rng(seed)
    tag_ids = cs2013.tag_ids()
    out = [SearchQuery()]
    for k in (1, 2, 4):
        for _ in range(5):
            out.append(SearchQuery(
                tags=frozenset(rng.choice(tag_ids, size=k, replace=False).tolist())
            ))
    out.append(SearchQuery(text="lecture"))
    out.append(SearchQuery(text="zzz-no-such-material"))
    out.append(SearchQuery(tags=frozenset({tag_ids[0]}), text="lab"))
    return out


class TestShardOf:
    def test_stable_and_order_independent(self):
        assert shard_of("mat-1", 8) == shard_of("mat-1", 8)
        assert 0 <= shard_of("anything", 5) < 5
        assert shard_of("x", 1) == 0

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            shard_of("m", 0)
        with pytest.raises(ValueError, match=">= 1"):
            ShardedMaterialRepository(0)

    def test_partition_is_total(self, corpus2k):
        sharded = _fill(ShardedMaterialRepository(8), corpus2k)
        assert sum(sharded.shard_sizes()) == sharded.n_materials
        # sha256 spreads ids: no shard owns everything at 2k materials.
        assert max(sharded.shard_sizes()) < sharded.n_materials


class TestQueryEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 8])
    def test_search_grid(self, corpus2k, cs2013, n_shards):
        flat, sharded = _pair(corpus2k, n_shards)
        for q in _queries(cs2013):
            for limit in (None, 0, 5):
                assert _key(sharded.search(q, tree=cs2013, limit=limit)) == \
                    _key(flat.search(q, tree=cs2013, limit=limit)), (q, limit)

    @pytest.mark.parametrize("n_shards", [1, 2, 8])
    def test_search_many(self, corpus2k, cs2013, n_shards):
        flat, sharded = _pair(corpus2k, n_shards)
        qs = _queries(cs2013, seed=31)
        got = sharded.search_many(qs, tree=cs2013, limit=7)
        want = flat.search_many(qs, tree=cs2013, limit=7)
        assert [_key(h) for h in got] == [_key(h) for h in want]
        assert sharded.search_many([], tree=cs2013) == []

    @pytest.mark.parametrize("n_shards", [1, 2, 8])
    def test_find_similar(self, corpus2k, n_shards):
        flat, sharded = _pair(corpus2k, n_shards)
        rng = np.random.default_rng(5)
        ids = [m.id for m in flat.materials()]
        for mid in rng.choice(ids, size=12, replace=False).tolist():
            for limit in (1, 10):
                assert _key(sharded.find_similar(mid, limit=limit)) == \
                    _key(flat.find_similar(mid, limit=limit)), mid

    @pytest.mark.parametrize("n_shards", [2, 8])
    def test_similarity_matrix_and_stats(self, corpus2k, n_shards):
        flat, sharded = _pair(corpus2k, n_shards)
        for metric in ("jaccard", "cosine"):
            assert np.array_equal(
                sharded.similarity_matrix(metric=metric),
                flat.similarity_matrix(metric=metric),
            )
        assert sharded.stats() == flat.stats()
        assert [m.id for m in sharded.materials()] == [
            m.id for m in flat.materials()
        ]

    def test_pool_fanout_matches_serial(self, corpus2k, cs2013):
        # workers=2 pushes the shard payloads through the real process
        # pool (pickling the per-shard repositories); results must not
        # change.
        serial = _fill(ShardedMaterialRepository(4), corpus2k)
        pooled = _fill(ShardedMaterialRepository(4, workers=2), corpus2k)
        qs = _queries(cs2013, seed=37)[:6]
        assert [_key(h) for h in pooled.search_many(qs, tree=cs2013, limit=5)] \
            == [_key(h) for h in serial.search_many(qs, tree=cs2013, limit=5)]
        mid = next(iter(m.id for m in serial.materials()))
        assert _key(pooled.find_similar(mid)) == _key(serial.find_similar(mid))

    def test_validation_mirrors_flat(self, corpus2k):
        _, sharded = _pair(corpus2k[:3], 4)
        with pytest.raises(ValueError, match=">= 0"):
            sharded.search(SearchQuery(), limit=-1)
        with pytest.raises(ValueError, match=">= 1"):
            sharded.find_similar(corpus2k[0].materials[0].id, limit=0)
        with pytest.raises(KeyError, match="no material"):
            sharded.material("nope")
        with pytest.raises(KeyError, match="no course"):
            sharded.course("nope")


def _dirty_roster(courses):
    """Clean courses plus a duplicate course id and a conflicting material."""
    clean = list(courses[:40])
    dup = Course(clean[0].id, "Duplicate id", materials=[
        Material("dup-m", "Dup", MaterialType.LAB, frozenset()),
    ])
    existing = clean[1].materials[0]
    conflict = Course("conflict-course", "Conflict", materials=[
        Material(existing.id, existing.title + " (edited)", existing.mtype,
                 existing.mappings),
    ])
    return clean + [dup, conflict]


class TestIngestAccounting:
    def test_flat_and_sharded_agree(self, corpus2k):
        roster = _dirty_roster(corpus2k)
        flat_report = MaterialRepository().ingest(roster)
        shard_report = ShardedMaterialRepository(8).ingest(roster)
        assert [c.id for c in shard_report.retained] == [
            c.id for c in flat_report.retained
        ]
        assert [(e.course_id, e.reason) for e in shard_report.excluded] == [
            (e.course_id, e.reason) for e in flat_report.excluded
        ]
        assert shard_report.reasons == {
            "duplicate-course-id": 1,
            "conflicting-material-id": 1,
        }

    def test_strict_raises_and_commits_nothing_extra(self, corpus2k):
        roster = _dirty_roster(corpus2k)
        sharded = ShardedMaterialRepository(4)
        with pytest.raises(ValueError, match="malformed"):
            sharded.ingest(roster, strict=True)
        # Clean prefix is retained; the rejected courses left no trace.
        assert sharded.n_courses == 40
        assert "dup-m" not in {m.id for m in sharded.materials()}


class TestChunkedStreaming:
    @pytest.mark.parametrize("chunk_size", [1, 7, 100])
    def test_accounting_chunk_size_invariant(self, corpus2k, chunk_size):
        records = [course_to_dict(c) for c in corpus2k[:60]]
        records.insert(10, {"title": "no id here"})
        records.insert(30, records[0])  # duplicate course id
        baseline = ingest_stream(
            MaterialRepository(), records, chunk_size=len(records)
        )
        metrics.reset()
        repo = ShardedMaterialRepository(4)
        report = ingest_stream(repo, records, chunk_size=chunk_size)
        assert isinstance(report, StreamIngestReport)
        assert report.retained_ids == baseline.retained_ids
        assert report.reasons == baseline.reasons
        assert report.reasons == {"missing-id": 1, "duplicate-course-id": 1}
        assert report.n_seen == len(records)
        assert len(report.chunks) == -(-len(records) // chunk_size)
        assert metrics.get("corpus.stream.chunks") == len(report.chunks)
        assert repo.n_courses == report.n_retained
        # Chunk ledger sums to the global split.
        assert sum(c["retained"] for c in report.chunks) == report.n_retained
        assert sum(c["excluded"] for c in report.chunks) == report.n_excluded

    def test_strict_mode_raises_after_accounting(self, corpus2k):
        records = [course_to_dict(c) for c in corpus2k[:5]] + [{"title": "bad"}]
        with pytest.raises(ValueError, match="malformed"):
            ingest_stream(
                ShardedMaterialRepository(2), records, chunk_size=2,
                strict=True,
            )
