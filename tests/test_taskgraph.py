"""Tests for the task-graph substrate: DAGs, scheduling, laws."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.taskgraph.comm import list_schedule_comm, validate_comm_schedule
from repro.taskgraph.dag import (
    TaskGraph,
    divide_and_conquer_dag,
    fork_join_dag,
    layered_random_dag,
    pipeline_dag,
    reduction_tree_dag,
    wavefront_dag,
)
from repro.taskgraph.laws import amdahl_speedup, brent_bound, gustafson_speedup
from repro.taskgraph.scheduling import PRIORITY_POLICIES, list_schedule


@pytest.fixture()
def diamond():
    """a -> {b, c} -> d with unit-ish weights."""
    return TaskGraph.from_edges(
        {"a": 1.0, "b": 2.0, "c": 3.0, "d": 1.0},
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
    )


class TestTaskGraph:
    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph.from_edges({"a": 1, "b": 1}, [("a", "b"), ("b", "a")])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph.from_edges({"a": 1}, [("a", "a")])

    def test_unknown_edge_target_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph.from_edges({"a": 1}, [("a", "ghost")])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph({"a": -1.0})

    def test_topological_order_respects_edges(self, diamond):
        order = diamond.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for u, vs in diamond.successors.items():
            for v in vs:
                assert pos[u] < pos[v]

    def test_work_and_span(self, diamond):
        assert diamond.work() == 7.0
        assert diamond.span() == 5.0  # a -> c -> d
        assert diamond.parallelism() == pytest.approx(7.0 / 5.0)

    def test_critical_path(self, diamond):
        assert diamond.critical_path() == ["a", "c", "d"]

    def test_sources_sinks(self, diamond):
        assert diamond.sources() == ["a"]
        assert diamond.sinks() == ["d"]

    def test_bottom_levels(self, diamond):
        levels = diamond.bottom_levels()
        assert levels["d"] == 1.0
        assert levels["c"] == 4.0
        assert levels["b"] == 3.0
        assert levels["a"] == 5.0

    def test_empty_graph(self):
        g = TaskGraph({})
        assert g.work() == 0.0
        assert g.span() == 0.0
        assert g.parallelism() == 0.0
        assert g.topological_order() == []

    def test_independent_tasks(self):
        g = TaskGraph({"a": 2.0, "b": 3.0})
        assert g.span() == 3.0
        assert g.work() == 5.0


class TestGenerators:
    def test_layered_shape(self):
        g = layered_random_dag(4, 5, seed=0)
        assert g.n_tasks == 20
        assert g.n_edges >= 15  # at least one parent per non-source task

    def test_layered_deterministic(self):
        a = layered_random_dag(3, 4, seed=2)
        b = layered_random_dag(3, 4, seed=2)
        assert a.weights == b.weights and a.successors == b.successors

    def test_fork_join(self):
        g = fork_join_dag(6, seed=0)
        assert g.n_tasks == 8
        assert g.sources() == ["fork"]
        assert g.sinks() == ["join"]
        assert g.parallelism() > 2

    def test_divide_and_conquer_counts(self):
        g = divide_and_conquer_dag(3)
        # 2^3 leaves + 2*(2^3 - 1) internal split/merge nodes.
        assert g.n_tasks == 8 + 2 * 7
        assert len(g.sources()) == 1 and len(g.sinks()) == 1

    def test_divide_and_conquer_depth_zero(self):
        g = divide_and_conquer_dag(0)
        assert g.n_tasks == 1

    def test_wavefront_span(self):
        g = wavefront_dag(4, 6, weight=1.0)
        # Longest path = rows + cols - 1 cells.
        assert g.span() == 9.0
        assert g.work() == 24.0

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            layered_random_dag(0, 3)
        with pytest.raises(ValueError):
            fork_join_dag(0)
        with pytest.raises(ValueError):
            divide_and_conquer_dag(-1)
        with pytest.raises(ValueError):
            wavefront_dag(0, 3)


class TestListScheduling:
    @pytest.mark.parametrize("policy", sorted(PRIORITY_POLICIES))
    def test_schedule_valid_all_policies(self, policy):
        g = layered_random_dag(5, 6, seed=1)
        s = list_schedule(g, 3, policy=policy)
        s.validate()

    def test_single_processor_serial(self, diamond):
        s = list_schedule(diamond, 1)
        s.validate()
        assert s.makespan == pytest.approx(diamond.work())
        assert s.speedup() == pytest.approx(1.0)

    def test_many_processors_hit_span(self, diamond):
        s = list_schedule(diamond, 10)
        s.validate()
        assert s.makespan == pytest.approx(diamond.span())

    def test_lower_bound_respected(self):
        g = layered_random_dag(6, 8, seed=4)
        for p in (1, 2, 4, 8):
            s = list_schedule(g, p)
            assert s.makespan >= s.lower_bound() - 1e-9

    def test_graham_bound(self):
        """Any list schedule is within (2 - 1/p) of the lower bound."""
        g = layered_random_dag(6, 8, seed=5)
        for p in (2, 4, 8):
            s = list_schedule(g, p)
            assert s.makespan <= (2 - 1 / p) * s.lower_bound() + 1e-9

    def test_brent_bound_respected(self):
        g = divide_and_conquer_dag(5)
        for p in (2, 4, 16):
            s = list_schedule(g, p)
            assert s.makespan <= brent_bound(g.work(), g.span(), p) + 1e-9

    def test_speedup_monotone_no_worse_than_half(self):
        # More processors never hurt a greedy schedule by much; efficiency
        # decreases monotonically.
        g = layered_random_dag(8, 10, seed=6)
        eff = [list_schedule(g, p).efficiency() for p in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(eff, eff[1:]))

    def test_bottom_level_beats_or_ties_fifo_usually(self):
        wins = 0
        for seed in range(8):
            g = layered_random_dag(6, 8, seed=seed)
            cp = list_schedule(g, 4, policy="bottom-level").makespan
            ff = list_schedule(g, 4, policy="fifo").makespan
            wins += cp <= ff + 1e-9
        assert wins >= 5

    def test_unknown_policy(self, diamond):
        with pytest.raises(ValueError):
            list_schedule(diamond, 2, policy="magic")

    def test_zero_processors(self, diamond):
        with pytest.raises(ValueError):
            list_schedule(diamond, 0)

    def test_processor_timeline_ordered(self):
        g = layered_random_dag(4, 4, seed=7)
        s = list_schedule(g, 2)
        for p in range(2):
            tl = s.processor_timeline(p)
            for a, b in zip(tl, tl[1:]):
                assert a.finish <= b.start + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 5), st.integers(2, 6), st.integers(1, 6),
           st.integers(0, 1000))
    def test_random_dags_schedule_feasibly(self, layers, width, p, seed):
        g = layered_random_dag(layers, width, seed=seed)
        s = list_schedule(g, p)
        s.validate()
        assert s.lower_bound() - 1e-9 <= s.makespan
        assert s.makespan <= brent_bound(g.work(), g.span(), p) + 1e-9


class TestLaws:
    def test_amdahl_limits(self):
        assert amdahl_speedup(0.0, 8) == pytest.approx(8.0)
        assert amdahl_speedup(1.0, 8) == pytest.approx(1.0)
        # Ceiling: 1/f as p -> infinity.
        assert amdahl_speedup(0.25, 10**6) == pytest.approx(4.0, rel=1e-3)

    def test_amdahl_monotone_in_p(self):
        s = [amdahl_speedup(0.2, p) for p in (1, 2, 4, 8, 16)]
        assert all(a <= b for a, b in zip(s, s[1:]))

    def test_gustafson_linear(self):
        assert gustafson_speedup(0.0, 16) == pytest.approx(16.0)
        assert gustafson_speedup(1.0, 16) == pytest.approx(1.0)
        assert gustafson_speedup(0.5, 10) == pytest.approx(5.5)

    def test_gustafson_geq_amdahl(self):
        for f in (0.1, 0.3, 0.7):
            for p in (2, 8, 32):
                assert gustafson_speedup(f, p) >= amdahl_speedup(f, p) - 1e-12

    def test_brent(self):
        assert brent_bound(100.0, 10.0, 10) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 2)
        with pytest.raises(ValueError):
            amdahl_speedup(0.5, 0)
        with pytest.raises(ValueError):
            gustafson_speedup(-0.1, 2)
        with pytest.raises(ValueError):
            brent_bound(-1, 0, 1)


class TestPathLengths:
    def test_critical_path_lengths(self, diamond):
        lengths = diamond.critical_path_lengths()
        assert lengths["a"] == 1.0
        assert lengths["b"] == 3.0   # a + b
        assert lengths["c"] == 4.0   # a + c
        assert lengths["d"] == 5.0   # a + c + d

    def test_predecessors(self, diamond):
        assert set(diamond.predecessors("d")) == {"b", "c"}
        assert diamond.predecessors("a") == ()


class TestFromEdgesDedup:
    """Duplicate ``(u, v)`` pairs must collapse, not double-count."""

    def test_duplicate_edges_collapse(self):
        g = TaskGraph.from_edges(
            {"a": 1, "b": 1, "c": 1},
            [("a", "b"), ("a", "b"), ("b", "c"), ("a", "b")],
        )
        assert g.n_edges == 2
        assert g.successors["a"] == ("b",)
        assert g.predecessors("b") == ("a",)

    def test_first_occurrence_order_preserved(self):
        g = TaskGraph.from_edges(
            {"a": 1, "b": 1, "c": 1},
            [("a", "c"), ("a", "b"), ("a", "c")],
        )
        assert g.successors["a"] == ("c", "b")

    def test_constructor_dedups_parallel_edges(self):
        g = TaskGraph({"a": 1.0, "b": 1.0}, {"a": ("b", "b")})
        assert g.n_edges == 1
        assert g.predecessors("b") == ("a",)

    def test_schedule_readiness_not_double_decremented(self):
        g = TaskGraph.from_edges(
            {"a": 1, "b": 1, "c": 1},
            [("a", "b"), ("a", "b"), ("b", "c")],
        )
        s = list_schedule(g, 2)
        s.validate()
        assert s.makespan == pytest.approx(3.0)


_SWEEP_GRAPHS = [
    ("layered", lambda: layered_random_dag(4, 4, seed=11)),
    ("fork-join", lambda: fork_join_dag(9, seed=5)),
    ("divide-conquer", lambda: divide_and_conquer_dag(3)),
    ("reduction", lambda: reduction_tree_dag(10)),
    ("pipeline", lambda: pipeline_dag(3, 4)),
    ("wavefront", lambda: wavefront_dag(4, 5)),
]


class TestEverySchedulePassesOwnValidate:
    """TIME_EPS regression sweep: simulators and validators share one
    tolerance, so no simulated schedule may fail its own feasibility check."""

    def test_one_shared_epsilon(self):
        from repro.taskgraph import comm, scheduling

        assert comm.TIME_EPS is scheduling.TIME_EPS

    @pytest.mark.parametrize("policy", sorted(PRIORITY_POLICIES))
    @pytest.mark.parametrize("p", [1, 2, 4])
    @pytest.mark.parametrize(
        "make", [m for _, m in _SWEEP_GRAPHS], ids=[n for n, _ in _SWEEP_GRAPHS]
    )
    def test_list_schedule_validates(self, make, policy, p):
        list_schedule(make(), p, policy=policy).validate()

    @pytest.mark.parametrize("policy", sorted(PRIORITY_POLICIES))
    @pytest.mark.parametrize("delay", [0.0, 1.5])
    @pytest.mark.parametrize(
        "make", [m for _, m in _SWEEP_GRAPHS], ids=[n for n, _ in _SWEEP_GRAPHS]
    )
    def test_comm_schedule_validates(self, make, policy, delay):
        s = list_schedule_comm(make(), 3, comm_delay=delay, policy=policy)
        validate_comm_schedule(s, delay)
