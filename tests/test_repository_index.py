"""Equivalence suite for the indexed query engine (PR 2).

The contract of :mod:`repro.materials.index` is exact: every indexed read
path must return **bit-identical** results — same hits, same float scores,
same tie-break ordering — to the reference scans it replaced
(``MaterialRepository._search_scan`` / ``_find_similar_scan``).  These
tests drive both implementations over randomized corpora and adversarial
edge cases (duplicate titles for tie-breaks, empty mappings, empty tag
expansions, post-``add_course`` invalidation) and compare verbatim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.materials import (
    MaterialRepository,
    SearchQuery,
    jaccard_similarity,
    similarity_graph,
    similarity_matrix,
)
from repro.materials.course import Course
from repro.materials.diff import course_similarity_matrix
from repro.materials.material import Material, MaterialType
from repro.ontology.builder import TreeBuilder
from repro.ontology.node import Bloom, Mastery
from repro.runtime.metrics import metrics

LEVELS = ["", "CS1", "CS2", "DS", "Algo"]
LANGUAGES = ["", "Java", "C", "Python"]
AUTHORS = ["", "Saule", "Bourke", "Subramanian", "Wong"]
DATASETS = [(), ("earthquakes",), ("movies", "earthquakes"), ("airports",)]
TITLES = ["Loops lab", "Trees lecture", "Sorting", "Loops lab", "Exam"]


def _random_corpus(seed: int, n: int = 60, n_tags: int = 25) -> list[Material]:
    """Materials with colliding titles, empty mappings, and mixed fields."""
    rng = np.random.default_rng(seed)
    tags = [f"t/{i:03d}" for i in range(n_tags)]
    out = []
    for i in range(n):
        k = int(rng.integers(0, 6))  # 0 => empty mappings
        mappings = frozenset(
            rng.choice(tags, size=k, replace=False).tolist()
        ) if k else frozenset()
        out.append(Material(
            id=f"m{i:03d}",
            title=TITLES[int(rng.integers(0, len(TITLES)))],
            mtype=list(MaterialType)[int(rng.integers(0, len(MaterialType)))],
            mappings=mappings,
            author=AUTHORS[int(rng.integers(0, len(AUTHORS)))],
            course_level=LEVELS[int(rng.integers(0, len(LEVELS)))],
            language=LANGUAGES[int(rng.integers(0, len(LANGUAGES)))],
            datasets=DATASETS[int(rng.integers(0, len(DATASETS)))],
            description=f"material number {i}",
        ))
    return out


def _random_queries(seed: int, tags: list[str]) -> list[SearchQuery]:
    rng = np.random.default_rng(seed)
    queries = [SearchQuery()]
    for _ in range(40):
        kw = {}
        if rng.random() < 0.7:
            k = int(rng.integers(1, 5))
            kw["tags"] = frozenset(rng.choice(tags, size=k, replace=False).tolist())
        if rng.random() < 0.3:
            kw["mtype"] = list(MaterialType)[int(rng.integers(0, len(MaterialType)))]
        if rng.random() < 0.3:
            kw["language"] = LANGUAGES[int(rng.integers(1, len(LANGUAGES)))]
        if rng.random() < 0.3:
            kw["course_level"] = LEVELS[int(rng.integers(1, len(LEVELS)))]
        if rng.random() < 0.2:
            kw["author"] = AUTHORS[int(rng.integers(1, len(AUTHORS)))][:3].lower()
        if rng.random() < 0.2:
            kw["text"] = ["loops", "tre", "material", "zzz"][int(rng.integers(0, 4))]
        if rng.random() < 0.2:
            kw["dataset"] = ["earth", "movie", "xyz"][int(rng.integers(0, 3))]
        queries.append(SearchQuery(**kw))
    return queries


def _repo(materials) -> MaterialRepository:
    repo = MaterialRepository()
    for m in materials:
        repo.add_material(m)
    return repo


def _key(hits):
    return [(h.material.id, h.score) for h in hits]


class TestSearchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_corpora(self, seed):
        mats = _random_corpus(seed)
        repo = _repo(mats)
        tags = [f"t/{i:03d}" for i in range(25)]
        for q in _random_queries(seed + 100, tags):
            for limit in (None, 0, 3):
                indexed = repo.search(q, limit=limit)
                scan = repo._search_scan(q, limit=limit)
                assert _key(indexed) == _key(scan), q

    def test_canonical_with_tree(self, dataset, cs2013):
        _, courses, _ = dataset
        repo = MaterialRepository()
        for c in courses:
            repo.add_course(c)
        rng = np.random.default_rng(7)
        tag_ids = cs2013.tag_ids()
        internal = [n for n in cs2013.node_ids() if not cs2013[n].is_tag]
        queries = [
            SearchQuery(tags=frozenset(rng.choice(tag_ids, size=3).tolist()))
            for _ in range(15)
        ]
        # Internal-node ids must expand to the tags beneath them.
        queries += [
            SearchQuery(tags=frozenset({internal[int(i)]}))
            for i in rng.integers(0, len(internal), size=5)
        ]
        queries.append(SearchQuery(min_mastery=Mastery.USAGE))
        queries.append(SearchQuery(
            min_mastery=Mastery.FAMILIARITY,
            tags=frozenset(rng.choice(tag_ids, size=4).tolist()),
        ))
        for q in queries:
            assert _key(repo.search(q, tree=cs2013)) == _key(
                repo._search_scan(q, tree=cs2013)
            ), q

    def test_bloom_filter_equivalence(self, dataset, pdc12):
        _, courses, _ = dataset
        repo = MaterialRepository()
        for c in courses:
            repo.add_course(c)
        q = SearchQuery(min_bloom=Bloom.COMPREHEND)
        assert _key(repo.search(q, tree=pdc12)) == _key(
            repo._search_scan(q, tree=pdc12)
        )

    def test_search_many_matches_search(self, dataset, cs2013):
        _, courses, _ = dataset
        repo = MaterialRepository()
        for c in courses:
            repo.add_course(c)
        rng = np.random.default_rng(3)
        tag_ids = cs2013.tag_ids()
        queries = [
            SearchQuery(tags=frozenset(rng.choice(tag_ids, size=3).tolist()))
            for _ in range(8)
        ] + [SearchQuery(), SearchQuery(text="lecture")]
        batched = repo.search_many(queries, tree=cs2013, limit=7)
        for q, hits in zip(queries, batched):
            assert _key(hits) == _key(repo.search(q, tree=cs2013, limit=7))

    def test_search_many_empty(self):
        assert _repo(_random_corpus(0)).search_many([]) == []


class TestSearchEdgeCases:
    def test_limit_zero(self):
        repo = _repo(_random_corpus(0))
        assert repo.search(SearchQuery(), limit=0) == []
        assert repo.search(SearchQuery(), limit=0) == repo._search_scan(
            SearchQuery(), limit=0
        )

    def test_negative_limit_raises(self):
        repo = _repo(_random_corpus(0))
        with pytest.raises(ValueError, match=">= 0"):
            repo.search(SearchQuery(), limit=-1)
        with pytest.raises(ValueError, match=">= 0"):
            repo.search_many([SearchQuery()], limit=-2)

    def test_find_similar_bad_limit_raises(self):
        repo = _repo(_random_corpus(0))
        with pytest.raises(ValueError, match=">= 1"):
            repo.find_similar("m000", limit=0)
        with pytest.raises(ValueError, match=">= 1"):
            repo.find_similar("m000", limit=-3)

    def test_empty_tag_expansion_matches_scan(self):
        # A unit with no tag descendants expands to the empty set; the scan
        # then treats the query as untagged (score 1.0 for every hit).
        b = TreeBuilder("G", "tiny")
        a = b.area("A", "Area")
        b.unit(a, "EMPTY", "No tags here")
        u = b.unit(a, "U", "Unit")
        b.topic(u, "Topic one")
        tree = b.build()
        repo = _repo([
            Material("m1", "M1", MaterialType.LAB, frozenset({"G/A/U/t-topic-one"})),
            Material("m2", "M2", MaterialType.LAB, frozenset()),
        ])
        q = SearchQuery(tags=frozenset({"G/A/EMPTY"}))
        indexed, scan = repo.search(q, tree=tree), repo._search_scan(q, tree=tree)
        assert _key(indexed) == _key(scan)
        assert [h.score for h in indexed] == [1.0, 1.0]

    def test_unknown_tag_matches_nothing(self):
        repo = _repo(_random_corpus(1))
        q = SearchQuery(tags=frozenset({"no/such/tag"}))
        assert repo.search(q) == repo._search_scan(q) == []

    def test_level_filter_without_tree_raises(self):
        repo = _repo(_random_corpus(1))
        with pytest.raises(ValueError, match="guideline tree"):
            repo.search(SearchQuery(min_mastery=Mastery.USAGE))

    def test_scores_are_plain_floats(self):
        repo = _repo(_random_corpus(2))
        hits = repo.search(SearchQuery(tags=frozenset({"t/001", "t/002"})))
        assert hits and all(type(h.score) is float for h in hits)


class TestFindSimilarEquivalence:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_randomized(self, seed):
        mats = _random_corpus(seed)
        repo = _repo(mats)
        for m in mats[::7]:
            for limit in (1, 4, 10, len(mats) + 5):
                assert _key(repo.find_similar(m.id, limit=limit)) == _key(
                    repo._find_similar_scan(m.id, limit=limit)
                ), (m.id, limit)

    def test_canonical(self, dataset):
        _, courses, _ = dataset
        repo = MaterialRepository()
        for c in courses:
            repo.add_course(c)
        ids = [m.id for m in repo.materials()][::37]
        for mid in ids:
            assert _key(repo.find_similar(mid, limit=10)) == _key(
                repo._find_similar_scan(mid, limit=10)
            )


class TestIndexMaintenance:
    def test_post_add_course_invalidation(self):
        repo = _repo(_random_corpus(4, n=20))
        q = SearchQuery(tags=frozenset({"t/001"}))
        before = repo.search(q)
        repo.similarity_matrix()  # force an incidence build
        extra = Course("late", "Late course", materials=[
            Material("late-m1", "Aardvark primer", MaterialType.LECTURE,
                     frozenset({"t/001", "t/002"})),
        ])
        repo.add_course(extra)
        after = repo.search(q)
        assert _key(after) == _key(repo._search_scan(q))
        assert {h.material.id for h in after} == (
            {h.material.id for h in before} | {"late-m1"}
        )
        # find_similar and similarity_matrix see the new row too.
        assert _key(repo.find_similar("late-m1")) == _key(
            repo._find_similar_scan("late-m1")
        )
        assert repo.similarity_matrix().shape[0] == repo.n_materials

    def test_similarity_matrix_bit_identical(self):
        repo = _repo(_random_corpus(6))
        for metric in ("jaccard", "cosine"):
            via_index = repo.similarity_matrix(metric=metric)
            via_scan = similarity_matrix(list(repo.materials()), metric=metric)
            assert np.array_equal(via_index, via_scan)

    def test_level_mask_memoized_until_materials_change(self, cs2013, dataset):
        _, courses, _ = dataset
        repo = MaterialRepository()
        for c in courses:
            repo.add_course(c)
        metrics.reset()
        q = SearchQuery(min_mastery=Mastery.USAGE)
        repo.search(q, tree=cs2013)
        repo.search(q, tree=cs2013)
        assert metrics.get("repo.level_mask.misses") == 1
        assert metrics.get("repo.level_mask.hits") == 1
        repo.add_material(Material("fresh", "Fresh", MaterialType.QUIZ))
        repo.search(q, tree=cs2013)
        assert metrics.get("repo.level_mask.misses") == 2

    def test_incidence_partial_update_no_full_rebuilds(self):
        # Appending materials must never trigger a second full build: the
        # CSR incidence grows by row appends, and each post-add refresh is
        # an O(nnz) snapshot counted as repo.index.partial_update.
        metrics.reset()
        repo = _repo(_random_corpus(8, n=30))
        repo.similarity_matrix()  # first (and only) full build
        assert metrics.get("repo.index.builds") == 1
        refreshes = 0
        for batch in range(5):
            for j in range(4):
                repo.add_material(Material(
                    f"x{batch}-{j}", f"Batch {batch}", MaterialType.QUIZ,
                    frozenset({f"t/{j:03d}", f"fresh/{batch}"}),
                ))
            # One refresh per batch of adds, regardless of batch size.
            hits = repo.search_many(
                [SearchQuery(tags=frozenset({f"fresh/{batch}"}))]
            )[0]
            assert {h.material.id for h in hits} >= {
                f"x{batch}-{j}" for j in range(4)
            }
            refreshes += 1
        assert metrics.get("repo.index.builds") == 1
        assert metrics.get("repo.index.partial_update") == refreshes
        # The incrementally-grown matrix still matches the from-scratch one.
        assert np.array_equal(
            repo.similarity_matrix(),
            similarity_matrix(list(repo.materials())),
        )

    def test_query_metrics_reported(self):
        metrics.reset()
        repo = _repo(_random_corpus(7, n=10))
        repo.search(SearchQuery(tags=frozenset({"t/003"})))
        repo.search(SearchQuery(text="material"))  # no indexed filter -> scan
        repo.find_similar("m000")
        import repro.runtime as runtime

        text = runtime.summary()
        assert "repo.search.queries" in text
        assert "repo.search.plan.indexed" in text
        assert "repo.search.plan.scan" in text
        assert "repo.search.rows.scanned" in text
        assert "repo.find_similar" in text
        assert "repo.index.build" in text


class TestVectorizedGraphs:
    def test_similarity_graph_matches_double_loop(self):
        mats = _random_corpus(8, n=30)
        g = similarity_graph(mats, threshold=0.1)
        s = similarity_matrix(mats)
        expected = {
            (mats[i].id, mats[j].id): s[i, j]
            for i in range(len(mats))
            for j in range(i + 1, len(mats))
            if s[i, j] > 0.1
        }
        assert {tuple(e) for e in g.edges} == set(expected)
        for (u, v), w in expected.items():
            assert g.edges[u, v]["weight"] == float(w)

    def test_course_similarity_matrix_matches_pairwise(self, dataset, cs2013):
        _, courses, _ = dataset
        courses = list(courses)
        s = course_similarity_matrix(courses, tree=cs2013)
        tag_sets = [
            frozenset(t for t in c.tag_set() if t in cs2013) for c in courses
        ]
        n = len(courses)
        ref = np.eye(n)
        for i in range(n):
            for j in range(i + 1, n):
                ref[i, j] = ref[j, i] = jaccard_similarity(tag_sets[i], tag_sets[j])
        assert np.array_equal(s, ref)
