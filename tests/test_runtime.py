"""Tests for the repro.runtime execution substrate.

Three invariants matter:

1. **Determinism** — parallel dispatch produces results bit-identical to
   the serial path for a fixed seed, at every layer (raw batch driver,
   typing, consensus, stability, k-sweep).
2. **Cache correctness** — a repeated call returns identical arrays and
   records a hit; distinct inputs never alias.
3. **Metrics accounting** — counters and timers reflect what actually ran.
"""

import os

import numpy as np
import pytest

import repro.runtime as runtime
from repro.analysis import build_course_matrix, type_courses
from repro.analysis.model_selection import k_sweep, stability_score
from repro.factorization.consensus import consensus_matrix
from repro.factorization.nmf import nmf_restart_specs
from repro.runtime.cache import ResultCache, array_digest, content_key
from repro.runtime.executor import (
    parallel_map,
    resolve_workers,
    run_nmf_fits,
    set_default_workers,
    spawn_seeds,
)
from repro.runtime.metrics import MetricsRegistry


@pytest.fixture
def a():
    rng = np.random.default_rng(3)
    return np.abs(rng.standard_normal((25, 40)))


@pytest.fixture
def small_matrix(a):
    from repro.materials.course import Course
    from repro.materials.material import Material, MaterialType

    courses = []
    for i in range(a.shape[0]):
        tags = [f"t{j}" for j in range(a.shape[1]) if a[i, j] > 1.0] or ["t0"]
        courses.append(
            Course(
                f"c{i}", f"c{i}",
                materials=[
                    Material(
                        f"c{i}/m", "m", MaterialType.LECTURE, frozenset(tags)
                    )
                ],
            )
        )
    return build_course_matrix(courses)


@pytest.fixture(autouse=True)
def _isolated_runtime():
    """Each test starts with fresh metrics, empty cache, default workers."""
    runtime.reset()
    set_default_workers(None)
    yield
    runtime.reset()
    set_default_workers(None)


# -- worker resolution -------------------------------------------------------


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_env_garbage_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        assert resolve_workers() == 1

    def test_configured_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        runtime.configure(workers=2)
        assert resolve_workers() == 2

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1


# -- seeds -------------------------------------------------------------------


class TestSpawnSeeds:
    def test_deterministic(self):
        a = [s.generate_state(2).tolist() for s in spawn_seeds(42, 4)]
        b = [s.generate_state(2).tolist() for s in spawn_seeds(42, 4)]
        assert a == b

    def test_children_distinct(self):
        states = {tuple(s.generate_state(2)) for s in spawn_seeds(0, 16)}
        assert len(states) == 16

    def test_accepts_generator_and_seedseq(self):
        g = np.random.default_rng(1)
        assert len(spawn_seeds(g, 3)) == 3
        ss = np.random.SeedSequence(9)
        assert len(spawn_seeds(ss, 2)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


# -- parallel map ------------------------------------------------------------


def _square(x):
    return x * x


class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(_square, range(10), workers=1) == [
            x * x for x in range(10)
        ]

    def test_parallel_matches_serial(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=3) == parallel_map(
            _square, items, workers=1
        )

    def test_unpicklable_falls_back_to_serial(self):
        items = list(range(6))
        out = parallel_map(lambda x: x + 1, items, workers=2)  # closures can't pickle
        assert out == [x + 1 for x in items]
        assert runtime.metrics.get("executor.fallback") == 1

    def test_empty(self):
        assert parallel_map(_square, [], workers=4) == []


# -- determinism through the analysis layers ---------------------------------


class TestDeterminism:
    def test_batch_parallel_equals_serial(self, a):
        specs = nmf_restart_specs(a, 3, seed=0, n_restarts=6)
        serial = run_nmf_fits(a, specs, workers=1, use_cache=False)
        parallel = run_nmf_fits(a, specs, workers=4, use_cache=False)
        for s, p in zip(serial, parallel):
            assert np.array_equal(s["w"], p["w"])
            assert np.array_equal(s["h"], p["h"])
            assert float(s["err"]) == float(p["err"])

    def test_type_courses_workers_invariant(self, small_matrix):
        t1 = type_courses(small_matrix, 3, seed=7, workers=1)
        t2 = type_courses(small_matrix, 3, seed=7, workers=3)
        assert np.array_equal(t1.w, t2.w)
        assert np.array_equal(t1.h, t2.h)
        assert t1.reconstruction_err == t2.reconstruction_err

    def test_consensus_workers_invariant(self, a):
        c1 = consensus_matrix(a, 3, n_runs=5, seed=0, workers=1)
        c2 = consensus_matrix(a, 3, n_runs=5, seed=0, workers=2)
        assert np.array_equal(c1, c2)

    def test_stability_workers_invariant(self, small_matrix):
        s1 = stability_score(small_matrix, 2, n_runs=3, seed=1, workers=1)
        s2 = stability_score(small_matrix, 2, n_runs=3, seed=1, workers=2)
        assert s1 == s2

    def test_k_sweep_workers_invariant(self, small_matrix):
        e1 = k_sweep(small_matrix, [2, 3], seed=0, stability_runs=2, workers=1)
        e2 = k_sweep(small_matrix, [2, 3], seed=0, stability_runs=2, workers=2)
        assert e1 == e2

    def test_spawned_seed_specs_are_layout_independent(self, a):
        """Seeds derived via spawn fan out identically in any batch split."""
        seeds = [int(s.generate_state(1)[0]) for s in spawn_seeds(5, 4)]
        whole = [
            run_nmf_fits(
                a,
                nmf_restart_specs(a, 2, seed=s, n_restarts=1),
                workers=1, use_cache=False,
            )[0]
            for s in seeds
        ]
        rerun = [
            run_nmf_fits(
                a,
                nmf_restart_specs(a, 2, seed=s, n_restarts=1),
                workers=2, use_cache=False,
            )[0]
            for s in seeds
        ]
        for x, y in zip(whole, rerun):
            assert np.array_equal(x["w"], y["w"])


# -- cache -------------------------------------------------------------------


class TestCache:
    def test_second_call_hits_and_matches(self, a):
        cache = ResultCache()
        specs = nmf_restart_specs(a, 3, seed=2, n_restarts=3)
        first = run_nmf_fits(a, specs, cache=cache)
        assert cache.stats.misses == 3 and cache.stats.hits == 0
        second = run_nmf_fits(a, specs, cache=cache)
        assert cache.stats.hits == 3
        for x, y in zip(first, second):
            assert np.array_equal(x["w"], y["w"])
            assert np.array_equal(x["h"], y["h"])

    def test_hit_recorded_in_metrics(self, a):
        specs = nmf_restart_specs(a, 2, seed=0, n_restarts=1)
        run_nmf_fits(a, specs)       # global cache: miss
        run_nmf_fits(a, specs)       # hit
        stats = runtime.metrics.cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_returned_arrays_are_copies(self, a):
        cache = ResultCache()
        specs = nmf_restart_specs(a, 2, seed=0, n_restarts=1)
        first = run_nmf_fits(a, specs, cache=cache)
        first[0]["w"][:] = -1.0       # vandalize the returned copy
        second = run_nmf_fits(a, specs, cache=cache)
        assert not np.array_equal(first[0]["w"], second[0]["w"])
        assert (second[0]["w"] >= 0).all()

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        for i in range(3):
            cache.put(f"k{i}", {"x": np.array([i])})
        assert "k0" not in cache
        assert "k1" in cache and "k2" in cache
        assert cache.stats.evictions == 1

    def test_lru_touch_on_get(self):
        cache = ResultCache(max_entries=2)
        cache.put("k0", {"x": np.array([0])})
        cache.put("k1", {"x": np.array([1])})
        cache.get("k0")               # k0 now most recent
        cache.put("k2", {"x": np.array([2])})
        assert "k0" in cache and "k1" not in cache

    def test_disk_roundtrip(self, tmp_path, a):
        specs = nmf_restart_specs(a, 2, seed=4, n_restarts=2)
        first = run_nmf_fits(a, specs, cache=ResultCache(cache_dir=tmp_path))
        reborn = ResultCache(cache_dir=tmp_path)
        second = run_nmf_fits(a, specs, cache=reborn)
        assert reborn.stats.disk_hits == 2
        for x, y in zip(first, second):
            assert np.array_equal(x["w"], y["w"])

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put("key", {"x": np.array([1.0])})
        cache.clear()                 # drop memory, keep disk
        (tmp_path / "key.npz").write_bytes(b"not a zipfile")
        assert cache.get("key") is None

    def test_disabled_cache_never_stores(self, a):
        cache = ResultCache(enabled=False)
        specs = nmf_restart_specs(a, 2, seed=0, n_restarts=1)
        run_nmf_fits(a, specs, cache=cache)
        run_nmf_fits(a, specs, cache=cache)
        assert len(cache) == 0 and cache.stats.hits == 0

    def test_content_key_sensitivity(self):
        x = np.arange(6, dtype=float).reshape(2, 3)
        base = content_key("nmf", [x], {"k": 2})
        assert content_key("nmf", [x], {"k": 2}) == base
        assert content_key("nmf", [x], {"k": 3}) != base
        assert content_key("nmf", [x + 1], {"k": 2}) != base
        assert content_key("other", [x], {"k": 2}) != base
        # type-tagged params: 1 vs 1.0 vs "1" are distinct configurations
        assert content_key("nmf", [x], {"k": 1}) != content_key(
            "nmf", [x], {"k": 1.0}
        )

    def test_array_digest_shape_sensitive(self):
        flat = np.arange(6, dtype=float)
        assert array_digest(flat) != array_digest(flat.reshape(2, 3))


# -- metrics -----------------------------------------------------------------


class TestMetrics:
    def test_counters(self):
        m = MetricsRegistry()
        m.inc("x")
        m.inc("x", 4)
        assert m.get("x") == 5
        assert m.get("never") == 0

    def test_timer_accumulates(self):
        m = MetricsRegistry()
        for _ in range(3):
            with m.timer("t"):
                pass
        snap = m.snapshot()["timers"]["t"]
        assert snap["count"] == 3
        assert snap["total_s"] >= 0
        assert snap["mean_s"] == pytest.approx(snap["total_s"] / 3)

    def test_fit_accounting(self, a):
        """One batch of N fits records N solver runs and their iterations."""
        specs = nmf_restart_specs(a, 2, seed=0, n_restarts=4)
        results = run_nmf_fits(a, specs, workers=1, use_cache=False)
        m = runtime.metrics
        assert m.get("runtime.nmf_fits") == 4
        assert m.get("runtime.nmf_fits_computed") == 4
        assert m.get("nmf.fits") == 4
        total_iters = sum(int(r["n_iter"]) for r in results)
        assert m.get("nmf.iterations") == total_iters
        assert m.snapshot()["timers"]["nmf.fit"]["count"] == 4

    def test_cached_batch_computes_nothing(self, a):
        specs = nmf_restart_specs(a, 2, seed=0, n_restarts=2)
        cache = ResultCache()
        run_nmf_fits(a, specs, cache=cache)
        before = runtime.metrics.get("nmf.fits")
        run_nmf_fits(a, specs, cache=cache)
        assert runtime.metrics.get("nmf.fits") == before
        assert runtime.metrics.get("runtime.nmf_fits_computed") == 2

    def test_summary_mentions_everything(self, a):
        specs = nmf_restart_specs(a, 2, seed=0, n_restarts=2)
        run_nmf_fits(a, specs)
        run_nmf_fits(a, specs)
        text = runtime.summary()
        assert "nmf.fit" in text
        assert "cache:" in text
        assert "hit" in text

    def test_reset(self, a):
        run_nmf_fits(a, nmf_restart_specs(a, 2, seed=0, n_restarts=1))
        runtime.reset()
        assert runtime.metrics.snapshot() == {
            "counters": {}, "timers": {}, "histograms": {},
        }
        assert runtime.summary().endswith("(nothing recorded)")


# -- configuration -----------------------------------------------------------


class TestConfigure:
    def test_cache_dir_and_disable(self, tmp_path, a):
        runtime.configure(cache_dir=tmp_path)
        specs = nmf_restart_specs(a, 2, seed=0, n_restarts=1)
        try:
            run_nmf_fits(a, specs)
            assert list(tmp_path.glob("*.npz"))
            runtime.configure(cache_enabled=False)
            assert runtime.result_cache.get("anything") is None
        finally:
            runtime.configure(cache_dir=None, cache_enabled=True)

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            runtime.configure(workers=0)
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


# -- latency histograms (PR 8) ----------------------------------------------


class TestHistograms:
    def test_observe_and_quantiles(self):
        m = MetricsRegistry()
        for v in [0.001] * 50 + [0.010] * 40 + [0.100] * 9 + [1.0]:
            m.observe("lat", v)
        hist = m.histogram("lat")
        assert hist.count == 100
        assert hist.min_value == 0.001 and hist.max_value == 1.0
        # log-bucketed quantiles: within one bucket (~19%) of the truth
        assert hist.quantile(0.5) == pytest.approx(0.001, rel=0.25)
        assert hist.quantile(0.9) == pytest.approx(0.010, rel=0.25)
        assert hist.quantile(1.0) == pytest.approx(1.0, rel=0.25)
        assert hist.quantile(1.0) <= hist.max_value
        assert hist.mean == pytest.approx(
            (0.001 * 50 + 0.010 * 40 + 0.100 * 9 + 1.0) / 100
        )

    def test_snapshot_and_summary_include_histograms(self):
        m = MetricsRegistry()
        m.observe("lat", 0.5)
        snap = m.snapshot()
        doc = snap["histograms"]["lat"]
        assert doc["count"] == 1
        assert {"p50", "p90", "p99", "mean", "min", "max"} <= set(doc)
        assert "lat" in m.summary() and "p50" in m.summary()

    def test_latency_contextmanager(self):
        m = MetricsRegistry()
        with m.latency("op"):
            pass
        hist = m.histogram("op")
        assert hist.count == 1 and hist.max_value > 0

    def test_negative_values_clamp_to_floor(self):
        m = MetricsRegistry()
        m.observe("x", -3.0)
        hist = m.histogram("x")
        assert hist.count == 1 and hist.quantile(0.5) >= 0

    def test_histogram_returns_copy_and_reset_clears(self):
        m = MetricsRegistry()
        m.observe("x", 1.0)
        m.histogram("x").counts.clear()  # mutating the copy is harmless
        assert m.histogram("x").count == 1
        m.reset()
        assert m.histogram("x").count == 0
        assert m.snapshot()["histograms"] == {}

    def test_thread_safety_under_contention(self):
        import threading as _threading

        m = MetricsRegistry()

        def pound():
            for i in range(500):
                m.observe("shared", 0.001 * (1 + i % 7))

        threads = [_threading.Thread(target=pound) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.histogram("shared").count == 4000


# -- cross-process cache writers (PR 8) --------------------------------------


def _stress_bundle():
    return {
        "w": np.full((16, 3), 7.0),
        "h": np.arange(48.0).reshape(3, 16),
    }


def _cache_writer_proc(args):
    """Hammer one disk key from this process; report any wrong read."""
    cache_dir, key, n = args
    writer = ResultCache(max_entries=4, cache_dir=cache_dir)
    reader = ResultCache(max_entries=4, cache_dir=cache_dir)
    bundle = _stress_bundle()
    for _ in range(n):
        writer.put(key, bundle)
        reader.clear()  # drop the memory layer: force a disk read
        got = reader.get(key)
        if got is not None and not (
            np.array_equal(got["w"], bundle["w"])
            and np.array_equal(got["h"], bundle["h"])
        ):
            return "wrong-data"
    if reader.stats.quarantined or writer.stats.quarantined:
        return "quarantined"
    return "ok"


class TestCacheConcurrency:
    def test_cross_process_writers_of_one_key(self, tmp_path):
        """Many processes writing the *same* key concurrently: every read
        sees either a miss or the full checksummed bundle — never torn
        data, never a quarantine (tmp-write + atomic rename)."""
        from concurrent.futures import ProcessPoolExecutor

        key = "stress-key"
        args = [(str(tmp_path), key, 30)] * 4
        with ProcessPoolExecutor(max_workers=4) as pool:
            verdicts = list(pool.map(_cache_writer_proc, args))
        assert verdicts == ["ok"] * 4
        final = ResultCache(cache_dir=tmp_path)
        got = final.get(key)
        bundle = _stress_bundle()
        assert got is not None
        assert np.array_equal(got["w"], bundle["w"])
        assert np.array_equal(got["h"], bundle["h"])
        assert final.stats.quarantined == 0
        # exactly one committed file for the key; no leaked tmp files
        assert len(list(tmp_path.glob("*.npz"))) == 1
        assert not list(tmp_path.glob(".tmp-*.npz"))

    def test_same_instance_thread_stress(self, tmp_path):
        """One ResultCache shared by threads (the service configuration):
        mixed put/get/contains/len under contention stays consistent."""
        import threading as _threading

        cache = ResultCache(max_entries=8, cache_dir=tmp_path)
        bundle = _stress_bundle()
        errors = []

        def pound(widx):
            try:
                for i in range(150):
                    key = f"k{(widx + i) % 12}"
                    cache.put(key, bundle)
                    got = cache.get(key)
                    if got is not None and not np.array_equal(
                        got["w"], bundle["w"]
                    ):
                        errors.append("wrong-data")
                    key in cache
                    len(cache)
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = [
            _threading.Thread(target=pound, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache) <= 8
        hits = cache.stats.hits + cache.stats.disk_hits
        assert hits > 0 and cache.stats.quarantined == 0
