"""Fault-injection and recovery tests for the fault-tolerant runtime.

The recovery matrix the ISSUE demands, exercised through the
deterministic harness in :mod:`repro.runtime.faults`:

* task bugs propagate as :class:`TaskError` immediately — no retry, no
  silent serial re-run;
* injected transient failures recover bit-identically with retries on,
  and surface as :class:`TaskError` (original exception preserved) with
  retries off;
* worker crashes (real ``BrokenProcessPool``) trigger pool rebuild +
  retry;
* hangs trip the per-task timeout, kill the task, and retry it;
* tasks out of budget are quarantined to a serial in-parent run;
* corrupt cache entries are quarantined, recomputed, and counted.
"""

import numpy as np
import pytest

import repro.runtime as runtime
from repro.factorization.nmf import nmf_restart_specs
from repro.runtime.cache import ResultCache
from repro.runtime.executor import (
    TaskError,
    failure_report,
    parallel_map,
    run_nmf_fits,
    set_default_task_retries,
    set_default_task_timeout,
    set_default_workers,
)
from repro.runtime.faults import (
    FaultPlan,
    InjectedTaskError,
    TransientTaskError,
    active_fault_plan,
    fault_plan_from_env,
    parse_fault_plan,
    set_fault_plan,
)


@pytest.fixture(autouse=True)
def _isolated_runtime(monkeypatch):
    """Fresh metrics/cache/report and a disarmed fault plan per test."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
    runtime.reset()
    set_fault_plan(None)
    set_default_workers(None)
    set_default_task_timeout(None)
    set_default_task_retries(None)
    yield
    runtime.reset()
    set_fault_plan(None)
    set_default_workers(None)
    set_default_task_timeout(None)
    set_default_task_retries(None)


def _double(x):
    return x * 2


def _boom(x):
    raise ValueError(f"bad input {x}")


# -- plan parsing and decisions ----------------------------------------------


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = parse_fault_plan(
            "seed=7,task_error=0.1,pool_crash=0.05,hang_s=0.5,"
            "only_first_attempt=1"
        )
        assert plan.seed == 7
        assert plan.task_error == 0.1
        assert plan.only_first_attempt is True
        assert parse_fault_plan(plan.describe()) == plan

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan key"):
            parse_fault_plan("seed=1,typo_rate=0.5")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="not numeric"):
            parse_fault_plan("task_error=lots")

    def test_rate_bounds_validated(self):
        with pytest.raises(ValueError, match="rate must be in"):
            FaultPlan(task_error=1.5)
        with pytest.raises(ValueError, match="hang_s"):
            FaultPlan(hang_s=-1.0)

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=3, task_error=0.5)
        decisions = [
            plan.should("task_error", index=i, attempt=0) for i in range(64)
        ]
        again = [
            plan.should("task_error", index=i, attempt=0) for i in range(64)
        ]
        assert decisions == again
        assert any(decisions) and not all(decisions)  # rate 0.5 mixes

    def test_only_first_attempt_gates_retries(self):
        plan = FaultPlan(seed=0, task_error=1.0, only_first_attempt=True)
        assert plan.should("task_error", index=5, attempt=0)
        assert not plan.should("task_error", index=5, attempt=1)

    def test_env_activation_and_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=9,task_error=0.2")
        env_plan = fault_plan_from_env()
        assert env_plan is not None and env_plan.seed == 9
        assert active_fault_plan() == env_plan
        configured = FaultPlan(seed=1)
        set_fault_plan(configured)
        assert active_fault_plan() == configured  # configure() wins

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "task_error=not-a-rate")
        with pytest.raises(ValueError):
            fault_plan_from_env()


# -- task bugs: never retried, never masked ----------------------------------


class TestTaskBugs:
    def test_pool_task_bug_raises_task_error(self):
        with pytest.raises(TaskError) as exc_info:
            parallel_map(_boom, list(range(6)), workers=2, retries=2)
        err = exc_info.value
        assert isinstance(err.original, ValueError)
        assert "bad input" in str(err.original)
        assert "ValueError" in err.original_traceback
        # A task bug is not infrastructure: nothing fell back or retried.
        assert runtime.metrics.get("executor.fallback") == 0
        assert runtime.metrics.get("executor.retry") == 0
        assert runtime.metrics.get("executor.task_error") == 1

    def test_serial_task_bug_raises_task_error(self):
        with pytest.raises(TaskError) as exc_info:
            parallel_map(_boom, [1], workers=1)
        assert exc_info.value.index == 0
        assert isinstance(exc_info.value.original, ValueError)

    def test_first_failing_index_reported(self):
        with pytest.raises(TaskError) as exc_info:
            parallel_map(_boom, list(range(4)), workers=2)
        assert exc_info.value.index == 0  # collected in submission order


# -- injected faults: recovery matrix ----------------------------------------


class TestInjectedTaskErrors:
    PLAN = "seed=3,task_error=0.5,only_first_attempt=1"

    def test_retries_recover_bit_identically(self):
        clean = parallel_map(_double, list(range(12)), workers=2)
        set_fault_plan(self.PLAN)
        faulty = parallel_map(_double, list(range(12)), workers=2, retries=2)
        assert faulty == clean
        assert runtime.metrics.get("executor.retry") > 0

    def test_retries_disabled_surfaces_task_error(self):
        set_fault_plan(self.PLAN)
        with pytest.raises(TaskError) as exc_info:
            parallel_map(_double, list(range(12)), workers=2, retries=0)
        assert isinstance(exc_info.value.original, InjectedTaskError)
        assert isinstance(exc_info.value.original, TransientTaskError)

    def test_serial_path_retries_too(self):
        set_fault_plan(self.PLAN)
        out = parallel_map(_double, list(range(12)), workers=1, retries=2)
        assert out == [x * 2 for x in range(12)]
        assert runtime.metrics.get("executor.retry") > 0


class TestPoolCrash:
    def test_broken_pool_rebuilt_and_results_identical(self):
        clean = parallel_map(_double, list(range(8)), workers=2)
        set_fault_plan("seed=11,pool_crash=0.4,only_first_attempt=1")
        faulty = parallel_map(_double, list(range(8)), workers=2, retries=3)
        assert faulty == clean
        assert runtime.metrics.get("executor.pool_rebuild") >= 1
        assert runtime.metrics.get("executor.parallel_batches") == 2
        kinds = failure_report().counts
        assert kinds.get("pool_rebuild", 0) >= 1

    def test_persistent_crasher_is_quarantined(self):
        # Every worker attempt dies; the parent runs the survivors
        # serially (pool_crash is inert outside a worker).
        set_fault_plan("seed=0,pool_crash=1.0")
        out = parallel_map(_double, list(range(4)), workers=2, retries=1)
        assert out == [x * 2 for x in range(4)]
        assert runtime.metrics.get("executor.quarantined") >= 1
        assert failure_report().counts.get("quarantined", 0) >= 1


class TestTimeouts:
    def test_hung_task_killed_and_retried(self):
        set_fault_plan("seed=5,task_hang=0.5,hang_s=30.0,only_first_attempt=1")
        out = parallel_map(
            _double, list(range(6)), workers=2, retries=3, timeout=1.0
        )
        assert out == [x * 2 for x in range(6)]
        assert runtime.metrics.get("executor.task_timeout") >= 1
        assert runtime.metrics.get("executor.pool_rebuild") >= 1
        assert failure_report().counts.get("task_timeout", 0) >= 1


class TestNmfBatchRecovery:
    def test_faulty_run_bit_identical_to_clean(self):
        rng = np.random.default_rng(1)
        a = np.abs(rng.standard_normal((20, 16)))
        specs = nmf_restart_specs(a, 3, seed=0, n_restarts=5)
        clean = run_nmf_fits(
            a, specs, workers=2, use_cache=False, kernel="serial"
        )
        set_fault_plan(
            "seed=3,task_error=0.4,pool_crash=0.2,only_first_attempt=1"
        )
        faulty = run_nmf_fits(
            a, specs, workers=2, use_cache=False, kernel="serial"
        )
        for c, f in zip(clean, faulty):
            for key in c:
                assert np.array_equal(c[key], f[key]), key


# -- failure report ----------------------------------------------------------


class TestFailureReport:
    def test_report_accumulates_and_serializes(self):
        set_fault_plan("seed=3,task_error=0.5,only_first_attempt=1")
        parallel_map(_double, list(range(12)), workers=2, retries=2)
        report = failure_report()
        assert report and len(report) == report.to_dict()["n_events"]
        data = report.to_dict()
        assert data["counts"].get("retry", 0) >= 1
        assert all(e["kind"] for e in data["events"])
        assert "retry" in report.to_json()

    def test_summary_includes_failures(self):
        set_fault_plan("seed=3,task_error=0.5,only_first_attempt=1")
        parallel_map(_double, list(range(12)), workers=2, retries=2)
        assert "event(s)" in runtime.summary()

    def test_reset_clears_report(self):
        failure_report().add("retry", task_index=0)
        runtime.reset()
        assert not failure_report()


# -- cache integrity ---------------------------------------------------------


class TestCacheIntegrity:
    def test_truncated_entry_quarantined_and_recomputed(self, tmp_path):
        rng = np.random.default_rng(2)
        a = np.abs(rng.standard_normal((15, 12)))
        specs = nmf_restart_specs(a, 2, seed=1, n_restarts=2)
        cache = ResultCache(cache_dir=tmp_path)
        first = run_nmf_fits(a, specs, cache=cache)
        entries = sorted(tmp_path.glob("*.npz"))
        assert len(entries) == 2
        data = entries[0].read_bytes()
        entries[0].write_bytes(data[: len(data) // 2])

        reborn = ResultCache(cache_dir=tmp_path)
        second = run_nmf_fits(a, specs, cache=reborn)
        for x, y in zip(first, second):
            assert np.array_equal(x["w"], y["w"])
        assert reborn.stats.quarantined == 1
        assert reborn.stats.disk_hits == 1  # the intact entry still serves
        assert runtime.metrics.get("cache.quarantined") == 1
        # The corrupt bytes were moved aside as evidence (not destroyed);
        # the path now holds the freshly recomputed entry.
        qdir = tmp_path / "quarantine"
        assert qdir.is_dir() and len(list(qdir.glob("*.npz"))) == 1
        assert ResultCache(cache_dir=tmp_path).get(entries[0].stem) is not None
        assert failure_report().counts.get("cache_quarantined", 0) == 1

    def test_tampered_payload_fails_checksum(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put("key", {"x": np.ones(4)})
        raw = dict(np.load(cache._disk_path("key")))
        raw["x"] = raw["x"] * 2  # valid npz, wrong bytes
        np.savez(cache._disk_path("key"), **raw)
        cache.clear()
        assert cache.get("key") is None
        assert cache.stats.quarantined == 1

    def test_legacy_entry_without_metadata_quarantined(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        np.savez(tmp_path / "old.npz", x=np.ones(3))
        assert cache.get("old") is None
        assert cache.stats.quarantined == 1

    def test_reserved_bundle_keys_rejected(self):
        cache = ResultCache()
        with pytest.raises(ValueError, match="reserved"):
            cache.put("k", {"__checksum__": np.ones(1)})

    def test_no_cwd_probe_without_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        np.savez(tmp_path / "sneaky.npz", x=np.ones(1))
        cache = ResultCache()  # no disk layer
        assert "sneaky" not in cache
        assert cache.get("sneaky") is None
        with pytest.raises(ValueError, match="disk layer is disabled"):
            cache._disk_path("sneaky")

    def test_clear_sweeps_tmp_and_quarantine(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put("keep", {"x": np.ones(2)})
        (tmp_path / ".tmp-orphan.npz").write_bytes(b"torn write")
        qdir = tmp_path / "quarantine"
        qdir.mkdir()
        (qdir / "bad.npz").write_bytes(b"junk")
        cache.clear(disk=True)
        assert not list(tmp_path.rglob("*.npz"))

    def test_injected_disk_error_counts_write_failure(self, tmp_path):
        set_fault_plan("seed=1,disk_error=1.0")
        cache = ResultCache(cache_dir=tmp_path)
        cache.put("k", {"x": np.ones(2)})
        assert not list(tmp_path.glob("*.npz"))
        assert runtime.metrics.get("cache.disk_write_error") == 1
        assert runtime.metrics.get("faults.disk_error") == 1

    def test_injected_corruption_detected_on_read(self, tmp_path):
        set_fault_plan("seed=1,cache_corrupt=1.0")
        cache = ResultCache(cache_dir=tmp_path)
        cache.put("k", {"x": np.ones(2)})
        cache.clear()  # drop memory; disk entry was truncated post-write
        assert cache.get("k") is None
        assert cache.stats.quarantined == 1
        assert runtime.metrics.get("faults.cache_corrupt") == 1
