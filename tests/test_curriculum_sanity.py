"""Structural sanity checks over the full curriculum datasets.

These guard the hand-authored data modules: every unit carries content,
ids stay well-formed, and the labels the crosswalk/catalog rely on stay
unique.
"""

from collections import Counter

from repro.curriculum import load_cs2013, load_pdc12
from repro.ontology.node import NodeKind


class TestCS2013DataIntegrity:
    def test_every_unit_has_tags(self, cs2013):
        for area in cs2013.areas():
            for unit in cs2013.children(area.id):
                tags = [
                    t for t in cs2013.descendant_ids(unit.id) if cs2013[t].is_tag
                ]
                assert tags, f"unit {unit.id} has no tags"

    def test_every_area_has_units(self, cs2013):
        for area in cs2013.areas():
            assert cs2013.child_ids(area.id), f"area {area.id} has no units"

    def test_ids_wellformed(self, cs2013):
        for tag in cs2013.tags():
            parts = tag.id.split("/")
            assert len(parts) == 4, tag.id
            assert parts[0] == "CS2013"
            assert parts[3].startswith(("t-", "o-"))

    def test_labels_unique_within_unit(self, cs2013):
        for area in cs2013.areas():
            for unit in cs2013.children(area.id):
                labels = [
                    cs2013[t].label
                    for t in cs2013.descendant_ids(unit.id)
                    if cs2013[t].is_tag
                ]
                dupes = [l for l, n in Counter(labels).items() if n > 1]
                assert not dupes, f"{unit.id}: duplicate labels {dupes}"

    def test_unit_codes_unique_within_area(self, cs2013):
        for area in cs2013.areas():
            codes = [u.meta["code"] for u in cs2013.children(area.id)]
            assert len(set(codes)) == len(codes), area.id

    def test_substantial_unit_count(self, cs2013):
        # CS2013 defines ~160 knowledge units; the encoding covers most.
        assert cs2013.level_sizes()[2] >= 130

    def test_topics_outnumber_outcomes_overall(self, cs2013):
        kinds = Counter(t.kind for t in cs2013.tags())
        assert kinds[NodeKind.TOPIC] > 0 and kinds[NodeKind.OUTCOME] > 0

    def test_tag_count_band(self, cs2013):
        assert 700 <= len(cs2013.tags()) <= 900


class TestPDC12DataIntegrity:
    def test_every_unit_has_topics(self, pdc12):
        for area in pdc12.areas():
            for unit in pdc12.children(area.id):
                tags = [
                    t for t in pdc12.descendant_ids(unit.id) if pdc12[t].is_tag
                ]
                assert tags, f"unit {unit.id} has no topics"

    def test_all_topics_have_bloom(self, pdc12):
        for t in pdc12.tags():
            assert t.bloom is not None, t.id

    def test_all_topics_have_tier(self, pdc12):
        for t in pdc12.tags():
            assert t.tier is not None, t.id

    def test_labels_globally_unique(self, pdc12):
        labels = [t.label for t in pdc12.tags()]
        dupes = [l for l, n in Counter(labels).items() if n > 1]
        assert not dupes, dupes
