"""Tests for the batched, sparse-aware NMF kernel engine.

The load-bearing property is *bit-identity*: for identical specs the
batched engine must return exactly the bytes the serial restart loop
returns — same ``W``/``H``/``err``/``n_iter``/``converged`` — which is
what lets :func:`repro.runtime.run_nmf_fits` swap strategies without
invalidating the content-addressed cache or any downstream figure.
"""

import numpy as np
import pytest
import scipy.sparse

import repro.runtime as runtime
from repro.factorization import kernels
from repro.factorization.kernels import (
    batched_nmf_fits,
    sparse_fit_single,
    validate_sparse,
)
from repro.factorization.nmf import NMF, nmf_restart_specs, nndsvd_init
from repro.runtime import resolve_nmf_kernel, run_nmf_fits
from repro.runtime.cache import ResultCache, matrix_digest
from repro.runtime.executor import set_default_nmf_kernel


@pytest.fixture(autouse=True)
def _fresh_runtime():
    runtime.reset()
    set_default_nmf_kernel(None)
    yield
    runtime.reset()
    set_default_nmf_kernel(None)


@pytest.fixture()
def binary(rng):
    """A small 0-1 course×tag-like matrix."""
    return (rng.random((9, 26)) < 0.3).astype(float)


def serial_fits(a, specs):
    """Reference results: one plain NMF fit per spec, in order."""
    out = []
    for spec in specs:
        params = {k: v for k, v in spec.items() if k not in ("W0", "H0")}
        model = NMF(**params)
        w = model.fit_transform(a, W0=spec.get("W0"), H0=spec.get("H0"))
        out.append(
            dict(
                w=w,
                h=model.components_,
                err=model.reconstruction_err_,
                n_iter=model.n_iter_,
                converged=model.converged_,
            )
        )
    return out


def assert_bundles_bit_equal(got, want):
    assert len(got) == len(want)
    for g, s in zip(got, want):
        for key in ("w", "h", "err", "n_iter", "converged"):
            assert np.array_equal(np.asarray(g[key]), np.asarray(s[key])), key


class TestCheckEveryValidation:
    def test_zero_raises_clear_error(self):
        with pytest.raises(ValueError, match="check_every must be >= 1"):
            NMF(2, check_every=0)

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="check_every"):
            NMF(2, check_every=-3)

    def test_one_is_allowed(self, binary):
        model = NMF(2, solver="hals", init="random", seed=0, check_every=1)
        w = model.fit_transform(binary)
        assert w.shape == (9, 2)


class TestFinalErrorReuse:
    def test_converging_fit_evaluates_objective_once_per_check(
        self, binary, monkeypatch
    ):
        """``fit_transform`` must not re-derive the error it already has."""
        import repro.factorization.nmf as nmf_mod

        calls = []
        real = nmf_mod._frobenius_error

        def counting(a, w, h):
            calls.append(1)
            return real(a, w, h)

        monkeypatch.setattr(nmf_mod, "_frobenius_error", counting)
        model = NMF(
            2, solver="hals", init="random", seed=0,
            tol=1e-3, check_every=5, max_iter=200,
        )
        model.fit_transform(binary)
        assert model.converged_
        # init eval + one eval per completed check window; converging
        # check's value is reused, so no extra final evaluation.
        assert len(calls) == 1 + model.n_iter_ // 5

    def test_error_matches_recomputed_value(self, binary):
        model = NMF(2, solver="mu", init="random", seed=3, tol=1e-3)
        w = model.fit_transform(binary)
        assert model.converged_
        assert model.reconstruction_err_ == pytest.approx(
            float(np.linalg.norm(binary - w @ model.components_))
        )

    def test_tol_zero_still_reports_final_error(self, binary):
        model = NMF(2, solver="hals", init="random", seed=0, tol=0.0, max_iter=30)
        w = model.fit_transform(binary)
        assert not model.converged_
        assert model.reconstruction_err_ == pytest.approx(
            float(np.linalg.norm(binary - w @ model.components_))
        )


class TestNndsvdarInit:
    def test_deterministic_per_seed(self, binary):
        w1, h1 = nndsvd_init(binary, 3, variant="nndsvdar", seed=7)
        w2, h2 = nndsvd_init(binary, 3, variant="nndsvdar", seed=7)
        assert np.array_equal(w1, w2) and np.array_equal(h1, h2)

    def test_differs_across_seeds(self, binary):
        w1, _ = nndsvd_init(binary, 3, variant="nndsvdar", seed=1)
        w2, _ = nndsvd_init(binary, 3, variant="nndsvdar", seed=2)
        assert not np.array_equal(w1, w2)

    def test_fills_zeros_with_small_positives(self, binary):
        w0, h0 = nndsvd_init(binary, 3, variant="nndsvd")
        w, h = nndsvd_init(binary, 3, variant="nndsvdar", seed=0)
        assert (w >= 0).all() and (h >= 0).all()
        # zeros of the plain variant become strictly smaller than the
        # matrix mean / 100 but the nonzeros are untouched
        filled = w[w0 == 0]
        assert (filled < binary.mean() / 100.0).all()
        assert np.array_equal(w[w0 != 0], w0[w0 != 0])

    def test_usable_as_nmf_init(self, binary):
        model = NMF(3, solver="mu", init="nndsvdar", seed=4, max_iter=40)
        w = model.fit_transform(binary)
        assert (w >= 0).all()
        assert np.isfinite(model.reconstruction_err_)

    def test_sparse_input_matches_dense(self, binary):
        w_d, h_d = nndsvd_init(binary, 3, variant="nndsvdar", seed=9)
        w_s, h_s = nndsvd_init(
            scipy.sparse.csr_array(binary), 3, variant="nndsvdar", seed=9
        )
        assert np.allclose(w_d, w_s) and np.allclose(h_d, h_s)


class TestBatchedBitEquivalence:
    CONFIGS = [
        dict(solver="mu", loss="frobenius"),
        dict(solver="mu", loss="kullback-leibler"),
        dict(solver="hals", loss="frobenius"),
        dict(solver="mu", loss="frobenius", l1_reg=0.05, l2_reg=0.2),
        dict(solver="mu", loss="kullback-leibler", l1_reg=0.03),
        dict(solver="hals", loss="frobenius", l1_reg=0.01, l2_reg=0.5),
        dict(solver="hals", loss="frobenius", tol=0.0, max_iter=23),
        dict(solver="mu", loss="frobenius", tol=1e-6, check_every=3),
        dict(solver="hals", loss="frobenius", check_every=1),
    ]

    @pytest.mark.parametrize("cfg", CONFIGS)
    def test_batched_matches_serial(self, cfg, rng):
        n, m = int(rng.integers(5, 12)), int(rng.integers(8, 30))
        k = int(rng.integers(2, 5))
        a = (rng.random((n, m)) < 0.35).astype(float)
        specs = nmf_restart_specs(
            a, k, seed=int(rng.integers(1000)), n_restarts=6,
            max_iter=cfg.get("max_iter", 60), **{
                key: v for key, v in cfg.items() if key != "max_iter"
            },
        )
        assert_bundles_bit_equal(batched_nmf_fits(a, specs), serial_fits(a, specs))

    def test_randomized_trials(self, rng):
        for _ in range(4):
            n, m = int(rng.integers(4, 14)), int(rng.integers(6, 25))
            k = int(rng.integers(1, 4))
            a = rng.random((n, m))
            solver = rng.choice(["mu", "hals"])
            loss = (
                rng.choice(["frobenius", "kullback-leibler"])
                if solver == "mu"
                else "frobenius"
            )
            specs = nmf_restart_specs(
                a, k, seed=int(rng.integers(1000)), solver=str(solver),
                loss=str(loss), n_restarts=4, max_iter=40,
                check_every=int(rng.integers(1, 12)),
            )
            assert_bundles_bit_equal(
                batched_nmf_fits(a, specs), serial_fits(a, specs)
            )

    def test_mixed_groups_preserve_spec_order(self, binary):
        """Different k interleaved — results come back in spec order."""
        specs = []
        for i in range(6):
            specs.extend(nmf_restart_specs(binary, 2 + i % 3, seed=i, n_restarts=1))
        assert_bundles_bit_equal(
            batched_nmf_fits(binary, specs), serial_fits(binary, specs)
        )

    def test_non_custom_init_falls_back_to_serial(self, binary):
        specs = [
            dict(n_components=2, solver="hals", init="nndsvda"),
            dict(n_components=2, solver="hals", init="random", seed=11),
        ]
        got = batched_nmf_fits(binary, specs)
        assert_bundles_bit_equal(got, serial_fits(binary, specs))
        assert runtime.metrics.get("kernel.serial_fallback_runs") == 2

    def test_tiny_batch_budget_is_bit_equal(self, binary, monkeypatch):
        """Chunking cannot change results — runs are independent."""
        specs = nmf_restart_specs(binary, 3, seed=0, n_restarts=7)
        want = batched_nmf_fits(binary, specs)
        monkeypatch.setenv("REPRO_NMF_BATCH_BUDGET", "10")
        assert kernels.batch_budget() == 10
        assert_bundles_bit_equal(batched_nmf_fits(binary, specs), want)

    def test_empty_specs(self, binary):
        assert batched_nmf_fits(binary, []) == []

    def test_invalid_matrix_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            batched_nmf_fits(np.array([[1.0, -2.0]]), [dict(n_components=1)])

    def test_bad_w0_shape_rejected(self, binary):
        spec = dict(
            n_components=2, init="custom",
            W0=np.ones((3, 2)), H0=np.ones((2, binary.shape[1])),
        )
        with pytest.raises(ValueError, match="W0 must be"):
            batched_nmf_fits(binary, [spec, spec])


class TestSparsePath:
    @pytest.fixture()
    def sparse_pair(self, rng):
        a = (rng.random((30, 90)) < 0.06).astype(float)
        return a, scipy.sparse.csr_array(a)

    @pytest.mark.parametrize("solver", ["mu", "hals"])
    def test_matches_dense_batched(self, sparse_pair, solver):
        a, asp = sparse_pair
        specs = nmf_restart_specs(a, 4, seed=0, solver=solver, n_restarts=3,
                                  max_iter=60)
        dense = batched_nmf_fits(a, specs)
        sparse_r = batched_nmf_fits(asp, specs)
        for d, s in zip(dense, sparse_r):
            assert float(s["err"]) == pytest.approx(float(d["err"]), rel=1e-8)
            assert np.allclose(s["w"], d["w"], rtol=1e-6, atol=1e-9)
            assert np.allclose(s["h"], d["h"], rtol=1e-6, atol=1e-9)
            assert int(s["n_iter"]) == int(d["n_iter"])
            assert bool(s["converged"]) == bool(d["converged"])

    def test_no_dense_residual_during_sparse_solve(self, sparse_pair):
        """The Gram-trick objective must be the only error path used."""
        _, asp = sparse_pair
        specs = nmf_restart_specs(asp, 3, seed=1, solver="hals", n_restarts=2)
        batched_nmf_fits(asp, specs)
        assert runtime.metrics.get("kernel.dense_residual_evals") == 0
        assert runtime.metrics.get("kernel.gram_objective_evals") > 0

    def test_kl_sparse_raises(self, sparse_pair):
        _, asp = sparse_pair
        specs = nmf_restart_specs(
            asp, 2, seed=0, solver="mu", loss="kullback-leibler", n_restarts=2
        )
        with pytest.raises(ValueError, match="frobenius loss only"):
            batched_nmf_fits(asp, specs)
        model = NMF(2, solver="mu", loss="kullback-leibler", seed=0)
        with pytest.raises(ValueError, match="frobenius loss only"):
            model.fit_transform(asp)

    def test_nmf_fit_transform_accepts_sparse(self, sparse_pair):
        a, asp = sparse_pair
        m_sp = NMF(3, solver="hals", init="nndsvdar", seed=5, max_iter=50)
        w_sp = m_sp.fit_transform(asp)
        m_de = NMF(3, solver="hals", init="nndsvdar", seed=5, max_iter=50)
        m_de.fit_transform(a)
        assert w_sp.shape == (30, 3)
        assert m_sp.reconstruction_err_ == pytest.approx(
            m_de.reconstruction_err_, rel=1e-8
        )
        assert m_sp.n_iter_ == m_de.n_iter_

    def test_sparse_fit_single_custom_init_requires_w0_h0(self, sparse_pair):
        _, asp = sparse_pair
        with pytest.raises(ValueError, match="requires W0 and H0"):
            sparse_fit_single(NMF(2, init="custom"), asp)

    def test_validate_sparse_rejects_negative_and_nan(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_sparse(scipy.sparse.csr_array(np.array([[0.0, -1.0]])))
        with pytest.raises(ValueError, match="finite"):
            validate_sparse(scipy.sparse.csr_array(np.array([[0.0, np.nan]])))

    def test_run_nmf_fits_sparse_end_to_end_with_cache(self, sparse_pair):
        _, asp = sparse_pair
        specs = nmf_restart_specs(asp, 3, seed=2, solver="mu", n_restarts=3)
        cache = ResultCache()
        r1 = run_nmf_fits(asp, specs, cache=cache)
        computed = runtime.metrics.get("kernel.batched_runs")
        r2 = run_nmf_fits(asp, specs, cache=cache)
        assert runtime.metrics.get("kernel.batched_runs") == computed
        assert_bundles_bit_equal(r2, r1)

    def test_matrix_digest_sparse_vs_dense_distinct_but_stable(self, sparse_pair):
        a, asp = sparse_pair
        assert matrix_digest(asp) == matrix_digest(scipy.sparse.csc_array(a))
        assert matrix_digest(asp) != matrix_digest(a)


class TestKernelResolution:
    def test_default_is_auto(self):
        assert resolve_nmf_kernel() == "auto"

    def test_argument_wins(self):
        set_default_nmf_kernel("serial")
        assert resolve_nmf_kernel("batched") == "batched"

    def test_configure_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NMF_KERNEL", "serial")
        runtime.configure(nmf_kernel="batched")
        assert resolve_nmf_kernel() == "batched"

    def test_env_used_when_unconfigured(self, monkeypatch):
        monkeypatch.setenv("REPRO_NMF_KERNEL", "batched")
        assert resolve_nmf_kernel() == "batched"

    def test_invalid_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_NMF_KERNEL", "warp-speed")
        assert resolve_nmf_kernel() == "auto"

    def test_invalid_argument_raises(self):
        with pytest.raises(ValueError, match="nmf_kernel"):
            resolve_nmf_kernel("warp-speed")
        with pytest.raises(ValueError, match="nmf_kernel"):
            set_default_nmf_kernel("warp-speed")

    def test_run_nmf_fits_strategies_agree(self, binary):
        specs = nmf_restart_specs(binary, 3, seed=6, n_restarts=4)
        batched = run_nmf_fits(binary, specs, kernel="batched", use_cache=False)
        serial = run_nmf_fits(binary, specs, kernel="serial", workers=1,
                              use_cache=False)
        auto = run_nmf_fits(binary, specs, kernel="auto", workers=1,
                            use_cache=False)
        assert_bundles_bit_equal(batched, serial)
        assert_bundles_bit_equal(auto, serial)
        assert runtime.metrics.get("runtime.nmf_strategy.batched") == 2
        assert runtime.metrics.get("runtime.nmf_strategy.serial") == 1

    def test_cache_is_strategy_oblivious(self, binary):
        """A bundle cached by one strategy is a hit for every other."""
        specs = nmf_restart_specs(binary, 2, seed=8, n_restarts=3)
        cache = ResultCache()
        run_nmf_fits(binary, specs, kernel="serial", workers=1, cache=cache)
        before = runtime.metrics.get("nmf.fits")
        out = run_nmf_fits(binary, specs, kernel="batched", cache=cache)
        assert runtime.metrics.get("nmf.fits") == before
        assert_bundles_bit_equal(out, serial_fits(binary, specs))
