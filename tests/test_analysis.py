"""Tests for the analysis package: matrix, agreement, typing, flavors, model selection."""

import numpy as np
import pytest

from repro.analysis.agreement import agreement, agreement_counts, agreement_tree
from repro.analysis.flavors import analyze_flavors
from repro.analysis.matrix import CourseMatrix, build_course_matrix
from repro.analysis.model_selection import (
    duplicate_dimension_score,
    k_sweep,
    select_k,
    singleton_dimension_score,
    stability_score,
    KSweepEntry,
)
from repro.analysis.typing import type_courses
from repro.materials.course import Course, CourseLabel
from repro.materials.material import Material, MaterialType


def mk_course(cid, tags, labels=()):
    return Course(
        cid, cid, labels=frozenset(labels),
        materials=[Material(f"{cid}/m", "m", MaterialType.LECTURE, frozenset(tags))],
    )


class TestCourseMatrix:
    def test_build_basic(self):
        courses = [mk_course("a", ["t1", "t2"]), mk_course("b", ["t2", "t3"])]
        m = build_course_matrix(courses)
        assert m.matrix.shape == (2, 3)
        assert m.tag_ids == ("t1", "t2", "t3")
        assert m.row("a").tolist() == [1.0, 1.0, 0.0]
        assert m.tag_counts() == {"t1": 1, "t2": 2, "t3": 1}

    def test_binary_entries(self, matrix):
        assert set(np.unique(matrix.matrix)) <= {0.0, 1.0}

    def test_label_filter(self):
        courses = [
            mk_course("a", ["t1"], [CourseLabel.CS1]),
            mk_course("b", ["t2"], [CourseLabel.DS]),
        ]
        m = build_course_matrix(courses, label=CourseLabel.CS1)
        assert m.course_ids == ("a",)
        assert m.tag_ids == ("t1",)

    def test_no_match_raises(self):
        with pytest.raises(ValueError):
            build_course_matrix([mk_course("a", ["t"])], label=CourseLabel.PDC)

    def test_tree_restricts_columns(self, small_tree):
        courses = [mk_course("a", ["G/A/U1/t-topic-alpha", "ELSEWHERE/tag"])]
        m = build_course_matrix(courses, tree=small_tree)
        assert m.tag_ids == ("G/A/U1/t-topic-alpha",)

    def test_full_universe(self, small_tree):
        courses = [mk_course("a", ["G/A/U1/t-topic-alpha"])]
        m = build_course_matrix(courses, tree=small_tree, full_universe=True)
        assert m.n_tags == 6
        assert m.matrix.sum() == 1.0

    def test_full_universe_needs_tree(self):
        with pytest.raises(ValueError):
            build_course_matrix([mk_course("a", ["t"])], full_universe=True)

    def test_subset_drops_zero_columns(self):
        courses = [mk_course("a", ["t1"]), mk_course("b", ["t2"])]
        m = build_course_matrix(courses)
        sub = m.subset(["a"])
        assert sub.tag_ids == ("t1",)
        assert sub.course_ids == ("a",)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CourseMatrix(np.zeros((2, 2)), ("a",), ("t1", "t2"))

    def test_row_order_preserved(self, matrix, courses):
        assert matrix.course_ids == tuple(c.id for c in courses)


class TestAgreement:
    def test_counts(self):
        courses = [mk_course("a", ["t1", "t2"]), mk_course("b", ["t2"])]
        counts = agreement_counts(courses)
        assert counts == {"t1": 1, "t2": 2}

    def test_weighted_counts_use_materials(self):
        c = Course("c", "C", materials=[
            Material("m1", "m1", MaterialType.LECTURE, frozenset({"t"})),
            Material("m2", "m2", MaterialType.LAB, frozenset({"t"})),
        ])
        assert agreement_counts([c], weighted=True)["t"] == 2
        assert agreement_counts([c], weighted=False)["t"] == 1

    def test_distribution_sorted_desc(self, cs1_courses, cs2013):
        res = agreement(cs1_courses, tree=cs2013)
        assert list(res.distribution) == sorted(res.distribution, reverse=True)
        assert len(res.distribution) == res.n_tags

    def test_at_least_antitone(self, cs1_courses, cs2013):
        res = agreement(cs1_courses, tree=cs2013)
        vals = [res.at_least[k] for k in sorted(res.at_least)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))
        assert res.at_least[1] == res.n_tags

    def test_empty_courses_rejected(self):
        with pytest.raises(ValueError):
            agreement([])

    def test_tags_at_least(self):
        courses = [mk_course("a", ["t1", "t2"]), mk_course("b", ["t2"])]
        res = agreement(courses)
        assert res.tags_at_least(2) == ["t2"]
        assert res.tags_at_least(1) == ["t1", "t2"]

    def test_agreement_tree_contains_only_qualifying(self, cs1_courses, cs2013):
        res = agreement(cs1_courses, tree=cs2013)
        sub = agreement_tree(cs1_courses, cs2013, 3)
        tags_in_tree = {n.id for n in sub.tags()}
        assert tags_in_tree == set(res.tags_at_least(3))


class TestTyping:
    def test_shapes_and_normalization(self, matrix):
        t = type_courses(matrix, 4, seed=0)
        assert t.w.shape == (matrix.n_courses, 4)
        assert t.h.shape == (4, matrix.n_tags)
        sums = t.w_normalized.sum(axis=1)
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_dominant_type(self, matrix):
        t = type_courses(matrix, 4, seed=0)
        for cid in matrix.course_ids[:3]:
            d = t.dominant_type(cid)
            i = matrix.course_ids.index(cid)
            assert d == int(np.argmax(t.w[i]))

    def test_restarts_pick_best(self, matrix):
        single = type_courses(matrix, 4, seed=0, n_restarts=1)
        multi = type_courses(matrix, 4, seed=0, n_restarts=5)
        assert multi.reconstruction_err <= single.reconstruction_err + 1e-9

    def test_label_affinity_rows_normalized(self, matrix, courses):
        t = type_courses(matrix, 4, seed=0)
        for vec in t.label_affinity(courses).values():
            assert vec.sum() == pytest.approx(1.0, abs=1e-6)

    def test_label_to_type_injective(self, matrix, courses):
        t = type_courses(matrix, 4, seed=0)
        mapping = t.label_to_type(courses)
        dims = list(mapping.values())
        assert len(dims) == len(set(dims))


class TestFlavors:
    def test_profiles_complete(self, matrix, cs1_courses, cs2013):
        sub = matrix.subset([c.id for c in cs1_courses])
        fa = analyze_flavors(sub, cs2013, 3, seed=1)
        assert len(fa.profiles) == 3
        for p in fa.profiles:
            assert abs(sum(p.area_mass.values()) - 1.0) < 1e-6
            assert p.top_tags
            assert all(w >= 0 for _, w in p.top_tags)

    def test_memberships_sum_to_one(self, matrix, cs1_courses, cs2013):
        sub = matrix.subset([c.id for c in cs1_courses])
        fa = analyze_flavors(sub, cs2013, 3, seed=1)
        for cid in sub.course_ids:
            assert fa.course_memberships(cid).sum() == pytest.approx(1.0, abs=1e-6)

    def test_strongest_course_consistency(self, matrix, cs1_courses, cs2013):
        sub = matrix.subset([c.id for c in cs1_courses])
        fa = analyze_flavors(sub, cs2013, 3, seed=1)
        for t in range(3):
            cid = fa.strongest_course(t)
            w = fa.course_memberships(cid)
            for other in sub.course_ids:
                assert w[t] >= fa.course_memberships(other)[t] - 1e-12

    def test_top_tags_sorted(self, matrix, cs1_courses, cs2013):
        sub = matrix.subset([c.id for c in cs1_courses])
        fa = analyze_flavors(sub, cs2013, 3, seed=1, top_n=5)
        for p in fa.profiles:
            weights = [w for _, w in p.top_tags]
            assert weights == sorted(weights, reverse=True)
            assert len(p.top_tags) <= 5


class TestModelSelection:
    def test_duplicate_score_detects_copies(self):
        h = np.array([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [5.0, 0.0, 0.0]])
        assert duplicate_dimension_score(h) == pytest.approx(1.0)

    def test_duplicate_score_orthogonal(self):
        h = np.eye(3)
        assert duplicate_dimension_score(h) == pytest.approx(0.0)

    def test_duplicate_score_k1(self):
        assert duplicate_dimension_score(np.ones((1, 4))) == 0.0

    def test_singleton_score(self):
        w = np.array([[10.0, 1.0], [0.1, 1.0], [0.1, 1.0]])
        # Column 0 dominated by course 0; column 1 spread evenly.
        assert singleton_dimension_score(w) == pytest.approx(0.5)

    def test_singleton_score_bad_input(self):
        with pytest.raises(ValueError):
            singleton_dimension_score(np.zeros(3))

    def test_stability_perfect_on_identifiable(self, rng):
        # Orthogonal block matrix: restarts must find identical types.
        a = np.zeros((9, 12))
        a[:3, :4] = 1; a[3:6, 4:8] = 1; a[6:, 8:] = 1
        m = CourseMatrix(a, tuple(f"c{i}" for i in range(9)),
                         tuple(f"t{j}" for j in range(12)))
        assert stability_score(m, 3, n_runs=3, seed=0) > 0.99

    def test_stability_needs_two_runs(self, matrix):
        with pytest.raises(ValueError):
            stability_score(matrix, 2, n_runs=1)

    def test_k_sweep_fields(self, matrix, cs1_courses):
        sub = matrix.subset([c.id for c in cs1_courses])
        entries = k_sweep(sub, [2, 3], seed=0, stability_runs=2)
        assert [e.k for e in entries] == [2, 3]
        for e in entries:
            assert e.reconstruction_err >= 0
            assert 0 <= e.duplicate_score <= 1
            assert 0 <= e.singleton_score <= 1

    def test_select_k_rules(self):
        entries = [
            KSweepEntry(2, 10.0, 0.3, 0.0, 1.0),
            KSweepEntry(3, 8.0, 0.4, 0.2, 1.0),
            KSweepEntry(4, 6.0, 0.4, 0.7, 1.0),   # singleton overfit
            KSweepEntry(5, 4.0, 0.9, 0.2, 1.0),
        ]
        assert select_k(entries) == 3

    def test_select_k_duplicate_rule(self):
        entries = [
            KSweepEntry(2, 10.0, 0.3, 0.0, 1.0),
            KSweepEntry(3, 8.0, 0.95, 0.0, 1.0),  # duplicate overfit
        ]
        assert select_k(entries) == 2

    def test_select_k_empty(self):
        with pytest.raises(ValueError):
            select_k([])


class TestTfidfWeighting:
    def test_sparsity_preserved(self, courses, cs2013):
        from repro.analysis.matrix import build_course_matrix
        b = build_course_matrix(list(courses), tree=cs2013)
        t = build_course_matrix(list(courses), tree=cs2013, weighting="tfidf")
        assert ((b.matrix > 0) == (t.matrix > 0)).all()
        assert t.tag_ids == b.tag_ids

    def test_rare_tags_upweighted(self, courses, cs2013):
        import numpy as np
        from repro.analysis.matrix import build_course_matrix
        b = build_course_matrix(list(courses), tree=cs2013)
        t = build_course_matrix(list(courses), tree=cs2013, weighting="tfidf")
        df = b.matrix.sum(axis=0)
        rare = int(np.argmin(np.where(df > 0, df, np.inf)))
        common = int(np.argmax(df))
        assert t.matrix[:, rare].max() > t.matrix[:, common].max()

    def test_unknown_weighting_rejected(self, courses):
        import pytest as _pytest
        from repro.analysis.matrix import build_course_matrix
        with _pytest.raises(ValueError):
            build_course_matrix(list(courses), weighting="log")

    def test_nonnegative_for_nmf(self, courses, cs2013):
        from repro.analysis.matrix import build_course_matrix
        t = build_course_matrix(list(courses), tree=cs2013, weighting="tfidf")
        assert (t.matrix >= 0).all()


class TestTopTagsForDim:
    def test_sorted_and_positive(self, matrix):
        t = type_courses(matrix, 4, seed=1)
        for d in range(4):
            tags = t.top_tags_for_dim(d, n=8)
            weights = [w for _, w in tags]
            assert weights == sorted(weights, reverse=True)
            assert all(w > 0 for w in weights)
            assert len(tags) <= 8

    def test_dim_bounds(self, matrix):
        t = type_courses(matrix, 4, seed=1)
        with pytest.raises(ValueError):
            t.top_tags_for_dim(4)
        with pytest.raises(ValueError):
            t.top_tags_for_dim(-1)


class TestDominantArea:
    def test_dominant_area_matches_max_mass(self, matrix, cs1_courses, cs2013):
        sub = matrix.subset([c.id for c in cs1_courses])
        fa = analyze_flavors(sub, cs2013, 3, seed=1)
        for p in fa.profiles:
            assert p.area_mass[p.dominant_area] == max(p.area_mass.values())
