"""Cross-module property-based tests (hypothesis).

These pin the *invariants* the pipeline relies on, independent of any
particular dataset: generation determinism, matrix/agreement consistency,
factorization monotonicity, hit-tree conservation laws, recommendation
monotonicity, and schedule feasibility.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.agreement import agreement
from repro.analysis.matrix import build_course_matrix
from repro.anchors.modules import MODULE_CATALOG
from repro.anchors.recommender import recommend_for_course
from repro.corpus.generator import sample_course_tags
from repro.curriculum import load_cs2013
from repro.factorization.nmf import NMF
from repro.materials.course import Course
from repro.materials.hittree import build_hit_tree
from repro.materials.material import Material, MaterialType
from repro.taskgraph.dag import TaskGraph
from repro.taskgraph.scheduling import list_schedule

CS2013 = load_cs2013()
_TAG_POOL = CS2013.tag_ids()[:60]

mixtures = st.sampled_from([
    {"cs1-imperative": 1.0},
    {"cs1-oop": 1.0},
    {"ds-combinatorial": 1.0},
    {"pdc": 1.0},
    {"cs1-imperative": 0.5, "cs1-algorithmic": 0.5},
    {"ds-applications": 0.7, "ds-object-oriented": 0.3},
])

tag_subsets = st.frozensets(st.sampled_from(_TAG_POOL), min_size=0, max_size=25)


def mk_course(cid, tag_groups):
    """Course whose i-th material covers tag_groups[i]."""
    materials = [
        Material(f"{cid}/m{i}", f"m{i}", MaterialType.LECTURE, frozenset(g))
        for i, g in enumerate(tag_groups)
    ]
    return Course(cid, cid, materials=materials)


class TestGenerationProperties:
    @settings(max_examples=10, deadline=None)
    @given(mixtures, st.integers(0, 10_000))
    def test_sampling_deterministic(self, mixture, seed):
        assert sample_course_tags(CS2013, mixture, seed=seed) == \
            sample_course_tags(CS2013, mixture, seed=seed)

    @settings(max_examples=10, deadline=None)
    @given(mixtures, st.integers(0, 10_000))
    def test_sampled_tags_valid(self, mixture, seed):
        tags = sample_course_tags(CS2013, mixture, seed=seed)
        assert all(t in CS2013 and CS2013[t].is_tag for t in tags)


class TestMatrixAgreementConsistency:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(tag_subsets, min_size=1, max_size=6))
    def test_column_sums_equal_agreement_counts(self, tag_sets):
        courses = [mk_course(f"c{i}", [ts]) for i, ts in enumerate(tag_sets)]
        if not any(ts for ts in tag_sets):
            return  # empty universe
        matrix = build_course_matrix(courses)
        res = agreement(courses)
        counts = matrix.tag_counts()
        assert counts == dict(res.counts)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(tag_subsets, min_size=2, max_size=6))
    def test_at_least_bounds(self, tag_sets):
        courses = [mk_course(f"c{i}", [ts]) for i, ts in enumerate(tag_sets)]
        res = agreement(courses)
        for k, v in res.at_least.items():
            assert 0 <= v <= res.n_tags
        assert res.at_least.get(len(courses) + 1, 0) == 0 or \
            len(courses) + 1 not in res.at_least


class TestHitTreeConservation:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(tag_subsets, min_size=1, max_size=5))
    def test_root_weight_equals_total_incidences(self, tag_sets):
        mats = [
            Material(f"m{i}", f"m{i}", MaterialType.LECTURE, ts)
            for i, ts in enumerate(tag_sets)
        ]
        ht = build_hit_tree(mats, CS2013)
        total = sum(len(ts) for ts in tag_sets)
        assert ht.weight(CS2013.root_id) == total

    @settings(max_examples=15, deadline=None)
    @given(tag_subsets)
    def test_parent_weight_geq_child(self, tags):
        mats = [Material("m", "m", MaterialType.LECTURE, tags)]
        ht = build_hit_tree(mats, CS2013)
        for nid in ht.tree.node_ids():
            for kid in ht.tree.child_ids(nid):
                assert ht.weight(nid) >= ht.weight(kid)


class TestRecommendationMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(tag_subsets)
    def test_more_coverage_never_lowers_scores(self, tags):
        module = MODULE_CATALOG()[0]
        base = mk_course("c", [tags])
        grown = mk_course("c", [tags | set(module.anchor_tags[:2])])
        score_of = lambda recs: {
            r.module.id: r.score for r in recs.recommendations
        }
        s_base = score_of(recommend_for_course(base))
        s_grown = score_of(recommend_for_course(grown))
        for mid, s in s_base.items():
            assert s_grown.get(mid, 0.0) >= s - 1e-12


class TestNMFProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 500))
    def test_error_nonincreasing_in_k(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((8, 12))
        errs = []
        for k in (1, 2, 4):
            m = NMF(k, solver="hals", seed=0)
            m.fit_transform(a)
            errs.append(m.reconstruction_err_)
        assert errs[0] >= errs[1] - 1e-8 >= errs[2] - 2e-8


class TestScheduleProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from([f"t{i}" for i in range(10)]),
            st.floats(0.1, 10.0),
            min_size=1,
            max_size=10,
        ),
        st.integers(1, 5),
        st.integers(0, 100),
    )
    def test_random_forests_schedule_feasibly(self, weights, p, seed):
        # Random forest edges: each task may depend on a lexicographically
        # smaller one (guarantees acyclicity).
        rng = np.random.default_rng(seed)
        names = sorted(weights)
        edges = [
            (names[int(rng.integers(i))], names[i])
            for i in range(1, len(names))
            if rng.random() < 0.6
        ]
        g = TaskGraph.from_edges(weights, edges)
        s = list_schedule(g, p)
        s.validate()
        assert s.makespan >= max(g.span(), g.work() / p) - 1e-9
        assert s.makespan <= g.work() + 1e-9
