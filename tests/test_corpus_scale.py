"""Corpus scale-out suite (PR 7): streaming, memmaps, out-of-core NMF.

Covers the bounded-memory paths that make six-figure corpora tractable:

* streamed generation is a pure re-chunking of the one-shot generator;
* the JSONL course format round-trips exactly and degrades tolerantly;
* memory-mapped arrays hash to the same cache digests as in-RAM copies,
  so the content-addressed NMF cache is storage-oblivious;
* the out-of-core ``kernel="online"`` solve is bit-identical to the
  serial kernel when ``A`` fits one block, and allclose under any
  blocking.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.corpus.generator import generate_corpus, synthetic_roster
from repro.corpus.stream import (
    generate_stream,
    iter_course_records,
    load_courses_jsonl,
    save_courses_jsonl,
)
from repro.factorization import (
    outofcore_nmf_fits,
    row_blocks,
    stream_incidence_memmap,
    write_incidence_memmap,
)
from repro.factorization.nmf import nmf_restart_specs
from repro.materials import MaterialRepository, ShardedMaterialRepository
from repro.materials.similarity import incidence_matrix
from repro.runtime import run_nmf_fits
from repro.runtime.cache import ResultCache, array_digest, matrix_digest
from repro.runtime.metrics import metrics


@pytest.fixture(scope="module")
def stream_courses(cs2013):
    return list(generate_stream(cs2013, seed=7, n_courses=24, batch=5))


class TestGenerateStream:
    def test_matches_one_shot_generator(self, cs2013, stream_courses):
        roster = synthetic_roster(24, seed=7)
        one_shot = generate_corpus(cs2013, seed=7, roster=roster)
        assert [c.id for c in stream_courses] == [c.id for c in one_shot]
        assert stream_courses == one_shot

    def test_batch_size_invariant(self, cs2013, stream_courses):
        rebatched = list(generate_stream(cs2013, seed=7, n_courses=24, batch=1))
        assert rebatched == stream_courses

    def test_material_cap_stops_after_crossing_course(self, cs2013):
        courses = list(generate_stream(cs2013, seed=3, n_materials=150))
        total = sum(len(c.materials) for c in courses)
        without_last = total - len(courses[-1].materials)
        assert total >= 150 and without_last < 150

    def test_exactly_one_cap_required(self, cs2013):
        with pytest.raises(ValueError, match="exactly one"):
            list(generate_stream(cs2013, seed=0))
        with pytest.raises(ValueError, match="exactly one"):
            list(generate_stream(cs2013, seed=0, n_courses=2, n_materials=9))


class TestCoursesJsonl:
    def test_round_trip_exact(self, tmp_path, stream_courses):
        path = tmp_path / "corpus.jsonl"
        n = save_courses_jsonl(stream_courses, path)
        assert n == len(stream_courses)
        assert load_courses_jsonl(path) == stream_courses

    def test_streamed_ingest_matches_strict_load(self, tmp_path, stream_courses):
        path = tmp_path / "corpus.jsonl"
        save_courses_jsonl(stream_courses, path)
        records = list(iter_course_records(path))
        assert len(records) == len(stream_courses)

    def test_malformed_body_line_yields_raw_record(self, tmp_path, stream_courses):
        path = tmp_path / "corpus.jsonl"
        save_courses_jsonl(stream_courses[:3], path)
        with open(path, "a") as fh:
            fh.write("{this is not json\n")
        records = list(iter_course_records(path))
        assert len(records) == 4
        assert isinstance(records[-1], str)  # excluded downstream as unparsable

    def test_bad_envelope_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not a repro course file"):
            list(iter_course_records(path))


class TestMemmapDigests:
    def test_memmap_and_ram_digests_agree(self, tmp_path):
        rng = np.random.default_rng(0)
        a = rng.random((64, 37))
        path = tmp_path / "a.npy"
        np.save(path, a)
        mapped = np.load(path, mmap_mode="r")
        assert array_digest(mapped) == array_digest(a)
        assert matrix_digest(mapped) == matrix_digest(a)

    def test_chunked_digest_matches_whole_buffer(self, tmp_path):
        # Force the multi-slab path (> _DIGEST_CHUNK_BYTES) and compare
        # against a sibling array hashed through the single-shot path.
        from repro.runtime.cache import _DIGEST_CHUNK_BYTES

        n = _DIGEST_CHUNK_BYTES // 8 + 1024  # just over one slab of f64
        a = np.arange(n, dtype=np.float64).reshape(1, -1)
        big = array_digest(a)
        # Same bytes, hashed whole: digest must not depend on slabbing.
        import hashlib

        h = hashlib.sha256()
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
        assert big == h.hexdigest()

    def test_cache_hits_across_storage(self, tmp_path):
        rng = np.random.default_rng(4)
        a = (rng.random((40, 19)) < 0.3).astype(float)
        path = tmp_path / "a.npy"
        np.save(path, a)
        mapped = np.load(path, mmap_mode="r")
        specs = nmf_restart_specs(a, 3, seed=1, solver="mu", n_restarts=2)
        cache = ResultCache()
        warm = run_nmf_fits(a, specs, kernel="serial", workers=1, cache=cache)
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        served = run_nmf_fits(mapped, specs, kernel="online", cache=cache)
        assert cache.stats.hits == 2
        for x, y in zip(warm, served):
            for key in ("w", "h", "err", "n_iter", "converged"):
                assert np.array_equal(x[key], y[key]), key


class TestRowBlocks:
    def test_cover_and_budget(self):
        blocks = row_blocks(100, 7, budget=35)
        assert blocks[0] == (0, 5)
        assert blocks[-1][1] == 100
        assert all(b1 - b0 <= 5 for b0, b1 in blocks)
        flat = [r for b0, b1 in blocks for r in range(b0, b1)]
        assert flat == list(range(100))

    def test_edge_cases(self):
        assert row_blocks(0, 10, budget=5) == []
        assert row_blocks(3, 10, budget=1) == [(0, 1), (1, 2), (2, 3)]
        with pytest.raises(ValueError, match=">= 1"):
            row_blocks(5, 5, budget=0)


class TestOutOfCoreNMF:
    @pytest.fixture()
    def binary(self):
        rng = np.random.default_rng(8)
        return (rng.random((60, 23)) < 0.25).astype(float)

    def test_single_block_bit_identical_to_serial(self, binary):
        specs = nmf_restart_specs(binary, 4, seed=2, solver="mu", n_restarts=3)
        serial = run_nmf_fits(binary, specs, kernel="serial", workers=1,
                              use_cache=False)
        online = run_nmf_fits(binary, specs, kernel="online", use_cache=False)
        for x, y in zip(serial, online):
            for key in ("w", "h", "err", "n_iter", "converged"):
                assert np.array_equal(x[key], y[key]), key

    def test_multi_block_allclose(self, binary):
        specs = nmf_restart_specs(binary, 4, seed=2, solver="mu", n_restarts=2)
        serial = run_nmf_fits(binary, specs, kernel="serial", workers=1,
                              use_cache=False)
        metrics.reset()
        blocked = outofcore_nmf_fits(binary, specs, budget=binary.shape[1] * 7)
        n_blocks = len(row_blocks(*binary.shape, budget=binary.shape[1] * 7))
        assert n_blocks > 1
        assert metrics.get("oocnmf.blocks") == n_blocks * len(specs)
        assert metrics.get("oocnmf.fits") == len(specs)
        for x, y in zip(serial, blocked):
            assert np.allclose(x["w"], y["w"], atol=1e-8)
            assert np.allclose(x["h"], y["h"], atol=1e-8)
            assert np.allclose(float(x["err"]), float(y["err"]), atol=1e-8)

    def test_memmap_input_multi_block(self, binary, tmp_path):
        path = tmp_path / "a.npy"
        np.save(path, binary)
        mapped = np.load(path, mmap_mode="r")
        specs = nmf_restart_specs(binary, 3, seed=5, solver="mu")
        ram = outofcore_nmf_fits(binary, specs, budget=binary.shape[1] * 11)
        ooc = outofcore_nmf_fits(mapped, specs, budget=binary.shape[1] * 11)
        for x, y in zip(ram, ooc):
            for key in ("w", "h", "err", "n_iter", "converged"):
                assert np.array_equal(x[key], y[key]), key

    def test_rejects_unsupported_specs(self, binary):
        import scipy.sparse

        with pytest.raises(TypeError, match="dense"):
            outofcore_nmf_fits(scipy.sparse.csr_array(binary), [])
        hals = nmf_restart_specs(binary, 3, seed=0, solver="hals")
        with pytest.raises(ValueError, match="solver='mu'"):
            outofcore_nmf_fits(binary, hals)
        no_init = [dict(n_components=3, solver="mu", init="nndsvd")]
        with pytest.raises(ValueError, match="init='custom'"):
            outofcore_nmf_fits(binary, no_init)

    def test_validation_matches_serial(self, binary):
        bad = binary.copy()
        bad[3, 4] = np.nan
        specs = nmf_restart_specs(binary, 2, seed=1, solver="mu")
        with pytest.raises(ValueError, match="NaN"):
            outofcore_nmf_fits(bad, specs, budget=binary.shape[1] * 9)
        neg = binary.copy()
        neg[0, 0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            outofcore_nmf_fits(neg, specs)


class TestWriteIncidenceMemmap:
    def test_matches_incidence_matrix(self, cs2013, tmp_path, stream_courses):
        for repo in (MaterialRepository(), ShardedMaterialRepository(4)):
            for c in stream_courses:
                repo.add_course(c)
            path = tmp_path / f"inc-{repo.__class__.__name__}.npy"
            out, universe = write_incidence_memmap(repo, path, block_rows=17)
            mats = list(repo.materials())
            ref = incidence_matrix([m.mappings for m in mats])
            assert universe == sorted({t for m in mats for t in m.mappings})
            assert np.array_equal(np.asarray(out), ref)
            reopened = np.load(path, mmap_mode="r")
            assert np.array_equal(np.asarray(reopened), ref)

    def test_empty_repo(self, tmp_path):
        out, universe = write_incidence_memmap(
            MaterialRepository(), tmp_path / "empty.npy"
        )
        assert universe == [] and out.shape == (0, 1)

    def test_bad_block_rows(self, tmp_path):
        with pytest.raises(ValueError, match=">= 1"):
            write_incidence_memmap(
                MaterialRepository(), tmp_path / "x.npy", block_rows=0
            )


class TestStreamIncidenceMemmap:
    """JSONL → memmap without a repository in between (PR 8)."""

    def test_matches_repository_export(self, tmp_path, stream_courses):
        jsonl = tmp_path / "corpus.jsonl"
        save_courses_jsonl(stream_courses, jsonl)
        repo = MaterialRepository()
        for c in stream_courses:
            repo.add_course(c)
        via_repo, u_repo = write_incidence_memmap(repo, tmp_path / "a.npy")
        via_jsonl, u_jsonl = stream_incidence_memmap(
            jsonl, tmp_path / "b.npy", block_rows=13
        )
        assert u_jsonl == u_repo
        assert np.array_equal(np.asarray(via_jsonl), np.asarray(via_repo))

    def test_duplicates_keep_first_occurrence(self, tmp_path, stream_courses):
        # a re-serialized duplicate course contributes no extra rows
        doubled = list(stream_courses[:4]) + [stream_courses[0]]
        jsonl = tmp_path / "doubled.jsonl"
        save_courses_jsonl(doubled, jsonl)
        out, universe = stream_incidence_memmap(jsonl, tmp_path / "c.npy")
        n_unique = sum(len(c.materials) for c in stream_courses[:4])
        assert out.shape[0] == n_unique

    def test_malformed_lines_are_skipped(self, tmp_path, stream_courses):
        jsonl = tmp_path / "noisy.jsonl"
        save_courses_jsonl(stream_courses[:3], jsonl)
        with open(jsonl, "a") as fh:
            fh.write("{not json\n")
            fh.write(json.dumps({"id": "no-materials"}) + "\n")
        metrics.reset()
        out, _ = stream_incidence_memmap(jsonl, tmp_path / "d.npy")
        assert out.shape[0] == sum(len(c.materials) for c in stream_courses[:3])
        assert metrics.get("oocnmf.incidence.skipped_lines") >= 1

    def test_feeds_outofcore_nmf(self, tmp_path, stream_courses):
        """The paper pipeline end to end: JSONL corpus → streamed
        incidence → out-of-core NMF, equal to the in-memory solve."""
        jsonl = tmp_path / "corpus.jsonl"
        save_courses_jsonl(stream_courses[:6], jsonl)
        out, _ = stream_incidence_memmap(jsonl, tmp_path / "a.npy")
        a = np.asarray(out)
        specs = nmf_restart_specs(a, 2, seed=3, solver="mu", n_restarts=1)
        mapped = np.load(tmp_path / "a.npy", mmap_mode="r")
        ooc = outofcore_nmf_fits(mapped, specs)
        dense = run_nmf_fits(a, specs, kernel="serial", use_cache=False)
        assert np.allclose(ooc[0]["w"], dense[0]["w"])
        assert np.allclose(ooc[0]["h"], dense[0]["h"])

    def test_bad_block_rows(self, tmp_path):
        with pytest.raises(ValueError, match=">= 1"):
            stream_incidence_memmap("whatever.jsonl", tmp_path / "x.npy",
                                    block_rows=0)
