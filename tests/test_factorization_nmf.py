"""Tests for the NMF implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.factorization.nmf import NMF, nndsvd_init


@pytest.fixture()
def low_rank(rng):
    w = rng.random((15, 3))
    h = rng.random((3, 40))
    return w @ h


nonneg_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(3, 10), st.integers(3, 12)),
    elements=st.floats(0.0, 5.0, allow_nan=False),
)


class TestBasics:
    @pytest.mark.parametrize("solver", ["mu", "hals"])
    def test_shapes(self, low_rank, solver):
        model = NMF(3, solver=solver, seed=0)
        w = model.fit_transform(low_rank)
        assert w.shape == (15, 3)
        assert model.components_.shape == (3, 40)

    @pytest.mark.parametrize("solver", ["mu", "hals"])
    def test_factors_nonnegative(self, low_rank, solver):
        model = NMF(3, solver=solver, seed=0)
        w = model.fit_transform(low_rank)
        assert (w >= 0).all()
        assert (model.components_ >= 0).all()

    def test_hals_recovers_low_rank(self, low_rank):
        model = NMF(3, solver="hals", seed=0, max_iter=500)
        w = model.fit_transform(low_rank)
        rel = np.linalg.norm(low_rank - w @ model.components_) / np.linalg.norm(low_rank)
        assert rel < 0.05

    def test_kl_loss_runs(self, low_rank):
        model = NMF(3, solver="mu", loss="kullback-leibler", seed=0)
        w = model.fit_transform(low_rank)
        assert np.isfinite(model.reconstruction_err_)
        assert (w >= 0).all()

    def test_reconstruction_err_matches_frobenius(self, low_rank):
        model = NMF(3, solver="hals", seed=0)
        w = model.fit_transform(low_rank)
        err = np.linalg.norm(low_rank - w @ model.components_)
        assert model.reconstruction_err_ == pytest.approx(err)

    def test_more_components_fit_better(self, low_rank):
        errs = []
        for k in (1, 2, 3):
            m = NMF(k, solver="hals", seed=0)
            m.fit_transform(low_rank)
            errs.append(m.reconstruction_err_)
        assert errs[0] >= errs[1] >= errs[2]

    def test_seeded_determinism(self, low_rank):
        w1 = NMF(3, seed=11).fit_transform(low_rank)
        w2 = NMF(3, seed=11).fit_transform(low_rank)
        np.testing.assert_array_equal(w1, w2)

    def test_strong_regularization_shrinks_factors(self, low_rank):
        plain = NMF(3, solver="mu", seed=0)
        wp = plain.fit_transform(low_rank)
        reg = NMF(3, solver="mu", seed=0, l2_reg=50.0)
        wr = reg.fit_transform(low_rank)
        # A penalty dwarfing the data term collapses the factors.
        assert np.linalg.norm(wr) < np.linalg.norm(wp)
        assert reg.reconstruction_err_ >= plain.reconstruction_err_


class TestMUMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(nonneg_matrices)
    def test_mu_frobenius_never_increases(self, a):
        # Run MU step by step; Lee-Seung guarantees monotone objective.
        model = NMF(2, solver="mu", seed=0, max_iter=1, tol=0)
        w = model.fit_transform(a)
        h = model.components_
        prev = np.linalg.norm(a - w @ h)
        for _ in range(5):
            model2 = NMF(2, solver="mu", init="custom", max_iter=1, tol=0)
            w = model2.fit_transform(a, W0=w, H0=h)
            h = model2.components_
            err = np.linalg.norm(a - w @ h)
            assert err <= prev + 1e-7
            prev = err

    @settings(max_examples=20, deadline=None)
    @given(nonneg_matrices)
    def test_outputs_always_nonnegative_and_finite(self, a):
        model = NMF(2, solver="hals", seed=1, max_iter=30)
        w = model.fit_transform(a)
        assert np.isfinite(w).all() and (w >= 0).all()
        assert np.isfinite(model.components_).all()


class TestTransform:
    def test_transform_new_rows(self, low_rank, rng):
        model = NMF(3, solver="hals", seed=0)
        model.fit_transform(low_rank)
        new = rng.random((4, 3)) @ rng.random((3, 40))
        w_new = model.transform(new)
        assert w_new.shape == (4, 3)
        assert (w_new >= 0).all()
        rel = np.linalg.norm(new - w_new @ model.components_) / np.linalg.norm(new)
        assert rel < 0.6

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            NMF(2).transform(np.ones((2, 2)))

    def test_transform_feature_mismatch(self, low_rank):
        model = NMF(3, seed=0).fit(low_rank)
        with pytest.raises(ValueError):
            model.transform(np.ones((2, 7)))

    def test_inverse_transform(self, low_rank):
        model = NMF(3, solver="hals", seed=0)
        w = model.fit_transform(low_rank)
        recon = model.inverse_transform(w)
        assert recon.shape == low_rank.shape


class TestValidation:
    def test_rejects_negative_input(self):
        with pytest.raises(ValueError):
            NMF(2, seed=0).fit_transform(np.array([[1.0, -0.1], [0.2, 0.3]]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            NMF(2, seed=0).fit_transform(np.array([[1.0, np.nan], [0.2, 0.3]]))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            NMF(0)
        with pytest.raises(ValueError):
            NMF(2, solver="nope")
        with pytest.raises(ValueError):
            NMF(2, loss="nope")
        with pytest.raises(ValueError):
            NMF(2, solver="hals", loss="kullback-leibler")
        with pytest.raises(ValueError):
            NMF(2, max_iter=0)
        with pytest.raises(ValueError):
            NMF(2, l2_reg=-1)

    def test_custom_init_requires_both(self, low_rank):
        with pytest.raises(ValueError):
            NMF(3, init="custom").fit_transform(low_rank)

    def test_custom_init_shape_checked(self, low_rank):
        with pytest.raises(ValueError):
            NMF(3, init="custom").fit_transform(
                low_rank, W0=np.ones((2, 3)), H0=np.ones((3, 40))
            )

    def test_unknown_init_rejected(self, low_rank):
        with pytest.raises(ValueError):
            NMF(3, init="wat").fit_transform(low_rank)


class TestNNDSVD:
    def test_nonnegative(self, low_rank):
        w, h = nndsvd_init(low_rank, 4)
        assert (w >= 0).all() and (h >= 0).all()
        assert w.shape == (15, 4) and h.shape == (4, 40)

    def test_nndsvda_fills_zeros(self, low_rank):
        w, h = nndsvd_init(low_rank, 4, variant="nndsvda")
        assert (w > 0).all() and (h > 0).all()

    def test_nndsvdar_random_fill(self, low_rank):
        w, h = nndsvd_init(low_rank, 4, variant="nndsvdar", seed=0)
        assert (w > 0).all() and (h > 0).all()

    def test_unknown_variant(self, low_rank):
        with pytest.raises(ValueError):
            nndsvd_init(low_rank, 2, variant="bogus")

    def test_deterministic(self, low_rank):
        w1, h1 = nndsvd_init(low_rank, 3)
        w2, h2 = nndsvd_init(low_rank, 3)
        np.testing.assert_array_equal(w1, w2)
        np.testing.assert_array_equal(h1, h2)

    def test_init_quality_beats_random_start(self, low_rank):
        """NNDSVD should start closer to A than a random init."""
        w, h = nndsvd_init(low_rank, 3)
        err_nndsvd = np.linalg.norm(low_rank - w @ h)
        model = NMF(3, init="random", seed=0, max_iter=1, tol=0)
        w_r = model.fit_transform(low_rank)
        # After a single iteration from random, error is typically larger
        # than the NNDSVD starting point.
        assert err_nndsvd < np.linalg.norm(low_rank) * 0.9
