"""Tests for the workshop-series simulation."""

import pytest

from repro.workshops.simulation import (
    ClassificationNoise,
    Workshop,
    WorkshopSeries,
    simulate_workshop_series,
)
from repro.materials.material import Material, MaterialType
from repro.corpus.roster import ROSTER


@pytest.fixture(scope="module")
def result(cs2013_module):
    return simulate_workshop_series(WorkshopSeries(cs2013_module), seed=7)


@pytest.fixture(scope="module")
def cs2013_module():
    from repro.curriculum import load_cs2013
    return load_cs2013()


class TestSeriesShape:
    def test_counts(self, result):
        assert result.n_classified == 31
        assert len(result.retained) == 20
        assert len(result.excluded) == 11

    def test_exclusion_log_matches(self, result):
        assert set(result.exclusion_log) == {c.id for c in result.excluded}
        assert all(reason for reason in result.exclusion_log.values())

    def test_attendee_count_per_workshop(self, result):
        for w in result.workshops[:-1]:
            assert len(w.attendees) == 10
        assert sum(len(w.attendees) for w in result.workshops) == 31

    def test_retained_order_follows_roster(self, result):
        assert [c.id for c in result.retained] == [e.id for e in ROSTER]

    def test_deterministic(self, cs2013_module):
        a = simulate_workshop_series(WorkshopSeries(cs2013_module), seed=9)
        b = simulate_workshop_series(WorkshopSeries(cs2013_module), seed=9)
        assert [c.tag_set() for c in a.retained] == [c.tag_set() for c in b.retained]

    def test_courses_nonempty(self, result):
        for c in result.retained:
            assert len(c.materials) > 0
            assert len(c.tag_set()) > 0


class TestWorkshopValidation:
    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            Workshop("w", "here", "hybrid", ())


class TestClassificationNoise:
    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            ClassificationNoise(drop_rate=1.0)
        with pytest.raises(ValueError):
            ClassificationNoise(displace_rate=-0.1)

    def test_zero_noise_is_identity(self, cs2013_module, rng):
        tags = frozenset(cs2013_module.tag_ids()[:10])
        m = Material("m", "t", MaterialType.LECTURE, tags)
        noise = ClassificationNoise(0.0, 0.0)
        assert noise.apply(m, cs2013_module, rng).mappings == tags

    def test_drop_only_shrinks(self, cs2013_module, rng):
        tags = frozenset(cs2013_module.tag_ids()[:50])
        m = Material("m", "t", MaterialType.LECTURE, tags)
        noise = ClassificationNoise(0.5, 0.0)
        out = noise.apply(m, cs2013_module, rng).mappings
        assert out < tags

    def test_displacement_keeps_tags_in_tree(self, cs2013_module, rng):
        tags = frozenset(cs2013_module.tag_ids()[:50])
        m = Material("m", "t", MaterialType.LECTURE, tags)
        noise = ClassificationNoise(0.0, 0.9)
        out = noise.apply(m, cs2013_module, rng).mappings
        assert all(t in cs2013_module for t in out)

    def test_displacement_moves_to_siblings(self, cs2013_module, rng):
        tags = frozenset(list(cs2013_module.tag_ids())[:30])
        m = Material("m", "t", MaterialType.LECTURE, tags)
        noise = ClassificationNoise(0.0, 0.9)
        out = noise.apply(m, cs2013_module, rng).mappings
        displaced = out - tags
        for t in displaced:
            parent = cs2013_module.parent_id(t)
            assert any(
                cs2013_module.parent_id(orig) == parent for orig in tags
            )

    def test_empty_material_passthrough(self, cs2013_module, rng):
        m = Material("m", "t", MaterialType.LECTURE, frozenset())
        noise = ClassificationNoise(0.5, 0.5)
        assert noise.apply(m, cs2013_module, rng) is m

    def test_noise_applied_in_series(self, cs2013_module):
        """With heavy drop noise, retained courses shrink measurably."""
        clean = simulate_workshop_series(
            WorkshopSeries(cs2013_module, noise=ClassificationNoise(0.0, 0.0)),
            seed=3,
        )
        noisy = simulate_workshop_series(
            WorkshopSeries(cs2013_module, noise=ClassificationNoise(0.4, 0.0)),
            seed=3,
        )
        clean_total = sum(len(c.tag_set()) for c in clean.retained)
        noisy_total = sum(len(c.tag_set()) for c in noisy.retained)
        assert noisy_total < clean_total


class TestCollectionGrowth:
    def test_three_year_buildup(self, cs2013_module):
        from repro.workshops import WorkshopSeries, simulate_collection_growth
        snaps = simulate_collection_growth(
            WorkshopSeries(cs2013_module), n_years=3, seed=44
        )
        assert [s.year for s in snaps] == [1, 2, 3]
        sizes = [len(s.cumulative) for s in snaps]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 20
        # Waves partition the roster without overlap.
        all_new = [cid for s in snaps for cid in s.new_course_ids]
        assert len(all_new) == len(set(all_new)) == 20

    def test_content_matches_single_shot(self, cs2013_module):
        from repro.workshops import (
            WorkshopSeries, simulate_collection_growth, simulate_workshop_series,
        )
        series = WorkshopSeries(cs2013_module)
        snaps = simulate_collection_growth(series, n_years=3, seed=7)
        single = simulate_workshop_series(series, seed=7)
        final = {c.id: c.tag_set() for c in snaps[-1].cumulative}
        direct = {c.id: c.tag_set() for c in single.retained}
        assert final == direct

    def test_single_year_is_everything(self, cs2013_module):
        from repro.workshops import WorkshopSeries, simulate_collection_growth
        snaps = simulate_collection_growth(
            WorkshopSeries(cs2013_module), n_years=1, seed=1
        )
        assert len(snaps) == 1
        assert len(snaps[0].cumulative) == 20

    def test_bad_years_rejected(self, cs2013_module):
        import pytest as _pytest
        from repro.workshops import WorkshopSeries, simulate_collection_growth
        with _pytest.raises(ValueError):
            simulate_collection_growth(WorkshopSeries(cs2013_module), n_years=0)
