"""Tests for course comparison (repro.materials.diff)."""

import pytest

from repro.materials.course import Course
from repro.materials.diff import compare_courses
from repro.materials.material import Material, MaterialType


def mk(cid, tags):
    return Course(cid, cid, materials=[
        Material(f"{cid}/m", "m", MaterialType.LECTURE, frozenset(tags)),
    ])


class TestCompareCourses:
    def test_partition(self, small_tree):
        a = mk("a", ["G/A/U1/t-topic-alpha", "G/A/U1/t-topic-beta"])
        b = mk("b", ["G/A/U1/t-topic-beta", "G/B/U3/t-topic-delta"])
        d = compare_courses(a, b, small_tree)
        assert d.shared == frozenset({"G/A/U1/t-topic-beta"})
        assert d.only_a == frozenset({"G/A/U1/t-topic-alpha"})
        assert d.only_b == frozenset({"G/B/U3/t-topic-delta"})
        assert d.jaccard == pytest.approx(1 / 3)

    def test_by_area(self, small_tree):
        a = mk("a", ["G/A/U1/t-topic-alpha", "G/A/U1/t-topic-beta"])
        b = mk("b", ["G/A/U1/t-topic-beta", "G/B/U3/t-topic-delta"])
        d = compare_courses(a, b, small_tree)
        assert d.by_area["A"] == (1, 1, 0)
        assert d.by_area["B"] == (0, 0, 1)

    def test_identical_courses(self, small_tree):
        a = mk("a", ["G/A/U1/t-topic-alpha"])
        b = mk("b", ["G/A/U1/t-topic-alpha"])
        d = compare_courses(a, b, small_tree)
        assert d.jaccard == 1.0 and d.cosine == 1.0
        assert not d.only_a and not d.only_b

    def test_disjoint_courses(self, small_tree):
        d = compare_courses(
            mk("a", ["G/A/U1/t-topic-alpha"]),
            mk("b", ["G/B/U3/t-topic-delta"]),
            small_tree,
        )
        assert d.jaccard == 0.0
        assert d.n_shared == 0

    def test_out_of_tree_tags_dropped(self, small_tree):
        d = compare_courses(
            mk("a", ["G/A/U1/t-topic-alpha", "ELSEWHERE/x"]),
            mk("b", ["G/A/U1/t-topic-alpha"]),
            small_tree,
        )
        assert d.jaccard == 1.0

    def test_without_tree_raw_comparison(self):
        d = compare_courses(mk("a", ["x", "y"]), mk("b", ["y", "z"]))
        assert d.shared == frozenset({"y"})
        assert set(d.by_area) == {"?"}

    def test_rankings(self, small_tree):
        a = mk("a", ["G/A/U1/t-topic-alpha", "G/A/U1/t-topic-beta",
                     "G/A/U2/t-topic-gamma"])
        b = mk("b", ["G/A/U1/t-topic-alpha", "G/B/U3/t-topic-delta"])
        d = compare_courses(a, b, small_tree)
        assert d.most_shared_areas(1) == ["A"]
        assert set(d.most_divergent_areas(2)) == {"A", "B"}

    def test_symmetry_of_similarity(self, small_tree):
        a = mk("a", ["G/A/U1/t-topic-alpha", "G/A/U1/t-topic-beta"])
        b = mk("b", ["G/A/U1/t-topic-beta"])
        d1 = compare_courses(a, b, small_tree)
        d2 = compare_courses(b, a, small_tree)
        assert d1.jaccard == d2.jaccard
        assert d1.only_a == d2.only_b


class TestCourseGraphAndMap:
    def test_similarity_matrix_properties(self, courses, cs2013):
        import numpy as np
        from repro.materials.diff import course_similarity_matrix
        s = course_similarity_matrix(list(courses), tree=cs2013)
        assert s.shape == (20, 20)
        assert np.allclose(np.diag(s), 1.0)
        assert np.allclose(s, s.T)
        assert (s >= 0).all() and (s <= 1).all()

    def test_families_more_similar_than_background(self, courses, cs2013):
        import itertools
        import numpy as np
        from repro.materials.course import CourseLabel
        from repro.materials.diff import course_similarity_matrix
        s = course_similarity_matrix(list(courses), tree=cs2013)
        idx = {c.id: i for i, c in enumerate(courses)}
        ds = [c.id for c in courses
              if CourseLabel.DS in c.labels or CourseLabel.ALGO in c.labels]
        within = np.mean([s[idx[a], idx[b]]
                          for a, b in itertools.combinations(ds, 2)])
        overall = s[np.triu_indices(len(courses), 1)].mean()
        assert within > overall

    def test_graph_threshold(self, courses, cs2013):
        from repro.materials.diff import course_similarity_graph
        g_all = course_similarity_graph(list(courses), tree=cs2013, threshold=0.0)
        g_tight = course_similarity_graph(list(courses), tree=cs2013, threshold=0.3)
        assert g_all.number_of_edges() > g_tight.number_of_edges()
        assert g_all.number_of_nodes() == 20

    def test_graph_bad_threshold(self, courses):
        import pytest as _pytest
        from repro.materials.diff import course_similarity_graph
        with _pytest.raises(ValueError):
            course_similarity_graph(list(courses), threshold=1.5)

    def test_course_map_deterministic(self, courses, cs2013):
        from repro.materials.diff import course_map
        few = list(courses)[:6]
        a, ra = course_map(few, tree=cs2013, seed=3)
        b, rb = course_map(few, tree=cs2013, seed=3)
        assert a == b
        assert ra.stress == rb.stress

    def test_course_map_needs_two(self, courses):
        import pytest as _pytest
        from repro.materials.diff import course_map
        with _pytest.raises(ValueError):
            course_map(list(courses)[:1])
