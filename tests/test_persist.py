"""Crash-safe shard persistence suite (PR 10).

:mod:`repro.materials.persist` promises a warm restart is *invisible*:
a repository loaded from a state directory answers every query bit for
bit like the repository that was saved — including after a shard
bundle is corrupted on disk, because the JSONL source of truth rebuilds
the lost hash partition deterministically.  Covered here:

* save → load round trip: search grid, ``search_many``,
  ``find_similar``, global material order, and counts all bit-equal;
* corruption recovery: a flipped byte / truncation / deletion
  quarantines the bundle and rebuilds it — results still bit-equal;
* the commit protocol: no manifest means nothing committed, a corrupt
  manifest or ``courses.jsonl`` raises :class:`StateCorrupt` (no
  recovery path past the source of truth).
"""

from __future__ import annotations

import json
import pickle

import pytest

import repro.runtime as runtime
from repro.corpus.stream import generate_stream
from repro.materials import (
    MaterialRepository,
    SearchQuery,
    ShardedMaterialRepository,
)
from repro.materials.persist import (
    COURSES_NAME,
    MANIFEST_NAME,
    QUARANTINE_DIR,
    StateCorrupt,
    has_state,
    load_repository,
    save_repository,
)
from repro.runtime.metrics import metrics


@pytest.fixture(autouse=True)
def _isolated_runtime():
    runtime.reset()
    yield
    runtime.reset()


@pytest.fixture(scope="module")
def corpus(cs2013):
    return list(generate_stream(cs2013, seed=17, n_materials=600))


@pytest.fixture(scope="module")
def repo(corpus):
    r = ShardedMaterialRepository(3)
    for c in corpus:
        r.add_course(c)
    return r


def _key(hits):
    return [(h.material.id, h.score) for h in hits]


def _queries(cs2013):
    tags = cs2013.tag_ids()
    return [
        SearchQuery(),
        SearchQuery(text="lecture"),
        SearchQuery(tags=frozenset({tags[0]})),
        SearchQuery(tags=frozenset(tags[:3]), text="lab"),
        SearchQuery(text="zzz-no-such-material"),
    ]


def _assert_bit_equal(a, b, cs2013):
    assert b.n_shards == a.n_shards
    assert b.n_courses == a.n_courses
    assert b.n_materials == a.n_materials
    assert [m.id for m in b.materials()] == [m.id for m in a.materials()]
    assert [c.id for c in b.courses()] == [c.id for c in a.courses()]
    for q in _queries(cs2013):
        for limit in (None, 5):
            assert _key(b.search(q, tree=cs2013, limit=limit)) == \
                _key(a.search(q, tree=cs2013, limit=limit)), (q, limit)
    qs = _queries(cs2013)
    assert [_key(h) for h in b.search_many(qs, tree=cs2013, limit=6)] == \
        [_key(h) for h in a.search_many(qs, tree=cs2013, limit=6)]
    some_ids = [m.id for m in a.materials()][:8]
    for mid in some_ids:
        assert _key(b.find_similar(mid, limit=8)) == \
            _key(a.find_similar(mid, limit=8)), mid


class TestRoundTrip:
    def test_save_load_bit_equal(self, repo, cs2013, tmp_path):
        assert not has_state(tmp_path)
        manifest = save_repository(repo, tmp_path)
        assert has_state(tmp_path)
        assert manifest["n_shards"] == repo.n_shards
        assert manifest["n_materials"] == repo.n_materials
        assert len(manifest["shards"]) == repo.n_shards
        loaded, report = load_repository(tmp_path)
        assert report == {"quarantined": {}, "rebuilt_shards": []}
        _assert_bit_equal(repo, loaded, cs2013)

    def test_resave_over_existing_state(self, repo, cs2013, tmp_path):
        save_repository(repo, tmp_path)
        save_repository(repo, tmp_path)  # idempotent overwrite
        loaded, report = load_repository(tmp_path)
        assert report["rebuilt_shards"] == []
        _assert_bit_equal(repo, loaded, cs2013)

    def test_no_tmp_litter_after_save(self, repo, tmp_path):
        save_repository(repo, tmp_path)
        assert not list(tmp_path.glob("*.tmp"))


class TestCorruptionRecovery:
    def _saved(self, repo, tmp_path):
        save_repository(repo, tmp_path)
        return sorted(tmp_path.glob("shard-*.pkl"))

    def test_flipped_byte_quarantines_and_rebuilds(
        self, repo, cs2013, tmp_path
    ):
        bundles = self._saved(repo, tmp_path)
        data = bytearray(bundles[1].read_bytes())
        data[len(data) // 2] ^= 0xFF
        bundles[1].write_bytes(bytes(data))
        loaded, report = load_repository(tmp_path)
        assert report["rebuilt_shards"] == [1]
        assert report["quarantined"] == {
            bundles[1].name: "checksum_mismatch"
        }
        assert (tmp_path / QUARANTINE_DIR / bundles[1].name).exists()
        assert metrics.get("persist.shard_quarantined") == 1
        assert metrics.get("persist.shard_rebuilt") == 1
        _assert_bit_equal(repo, loaded, cs2013)

    def test_missing_bundle_rebuilds(self, repo, cs2013, tmp_path):
        bundles = self._saved(repo, tmp_path)
        bundles[0].unlink()
        loaded, report = load_repository(tmp_path)
        assert report["rebuilt_shards"] == [0]
        assert report["quarantined"] == {bundles[0].name: "missing"}
        _assert_bit_equal(repo, loaded, cs2013)

    def test_wrong_object_in_bundle_rebuilds(self, repo, cs2013, tmp_path):
        bundles = self._saved(repo, tmp_path)
        payload = pickle.dumps({"not": "a repository"})
        bundles[2].write_bytes(payload)
        # keep the checksum honest so the *type* check is what fires
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        import hashlib

        manifest["shards"][2]["sha256"] = hashlib.sha256(payload).hexdigest()
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        loaded, report = load_repository(tmp_path)
        assert report["quarantined"] == {bundles[2].name: "wrong_type"}
        _assert_bit_equal(repo, loaded, cs2013)

    def test_all_bundles_lost_full_rebuild(self, repo, cs2013, tmp_path):
        for bundle in self._saved(repo, tmp_path):
            bundle.unlink()
        loaded, report = load_repository(tmp_path)
        assert report["rebuilt_shards"] == [0, 1, 2]
        _assert_bit_equal(repo, loaded, cs2013)


class TestCommitProtocol:
    def test_no_manifest_means_nothing_committed(self, repo, tmp_path):
        save_repository(repo, tmp_path)
        (tmp_path / MANIFEST_NAME).unlink()
        assert not has_state(tmp_path)
        with pytest.raises(StateCorrupt, match="nothing committed"):
            load_repository(tmp_path)

    def test_corrupt_manifest_raises(self, repo, tmp_path):
        save_repository(repo, tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(StateCorrupt, match="unreadable"):
            load_repository(tmp_path)

    def test_foreign_manifest_raises(self, repo, tmp_path):
        save_repository(repo, tmp_path)
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": "other"}))
        with pytest.raises(StateCorrupt, match="not a repro-state"):
            load_repository(tmp_path)

    def test_future_version_raises(self, repo, tmp_path):
        save_repository(repo, tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["version"] = 999
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StateCorrupt, match="unsupported version"):
            load_repository(tmp_path)

    def test_corrupt_source_of_truth_raises(self, repo, tmp_path):
        save_repository(repo, tmp_path)
        courses_path = tmp_path / COURSES_NAME
        courses_path.write_bytes(courses_path.read_bytes() + b"\ngarbage")
        with pytest.raises(StateCorrupt, match="source of truth"):
            load_repository(tmp_path)

    def test_missing_source_of_truth_raises(self, repo, tmp_path):
        save_repository(repo, tmp_path)
        (tmp_path / COURSES_NAME).unlink()
        with pytest.raises(StateCorrupt, match="missing source of truth"):
            load_repository(tmp_path)


class TestFlatRepositoryRejected:
    def test_only_sharded_repositories_persist(self, corpus, tmp_path):
        flat = MaterialRepository()
        for c in corpus[:3]:
            flat.add_course(c)
        with pytest.raises(AttributeError):
            save_repository(flat, tmp_path)
