"""Tests for ontology queries: reference level, areas, agreement subtrees, LCA."""

import pytest

from repro.ontology.queries import (
    agreement_subtree,
    area_histogram,
    area_of,
    common_ancestor,
    reference_level,
    tags_by_area,
)


class TestReferenceLevel:
    def test_small_tree(self, small_tree):
        # Level sizes: 1 root, 2 areas, 3 units, 6 tags -> reference = 3.
        assert reference_level(small_tree) == 3

    def test_cs2013_reference_is_tag_level(self, cs2013):
        assert reference_level(cs2013) == 3

    def test_tie_breaks_shallow(self, small_tree):
        # Subtree of area A: 1 unit-level... construct: depths 0:1, 1:2, 2:3
        sub = small_tree.subtree("G/A")
        # sizes: [1, 2, 4] -> deepest wins outright here; just sanity-check
        assert reference_level(sub) == 2


class TestAreaOf:
    def test_tag_rolls_to_area(self, small_tree):
        area = area_of(small_tree, "G/A/U1/t-topic-alpha")
        assert area is not None and area.id == "G/A"

    def test_area_is_itself(self, small_tree):
        assert area_of(small_tree, "G/B").id == "G/B"

    def test_root_has_no_area(self, small_tree):
        assert area_of(small_tree, "G") is None

    def test_tags_by_area_grouping(self, small_tree):
        tags = [t.id for t in small_tree.tags()]
        groups = tags_by_area(small_tree, tags)
        assert set(groups) == {"A", "B"}
        assert len(groups["A"]) == 4 and len(groups["B"]) == 2

    def test_area_histogram(self, small_tree):
        tags = [t.id for t in small_tree.tags()]
        hist = area_histogram(small_tree, tags)
        assert hist["A"] == 4 and hist["B"] == 2


class TestAgreementSubtree:
    def test_threshold_filters(self, small_tree):
        counts = {"G/A/U1/t-topic-alpha": 3, "G/B/U3/t-topic-delta": 1}
        sub2 = agreement_subtree(small_tree, counts, 2)
        assert "G/A/U1/t-topic-alpha" in sub2
        assert "G/B/U3/t-topic-delta" not in sub2

    def test_threshold_one_keeps_all_counted(self, small_tree):
        counts = {"G/A/U1/t-topic-alpha": 1, "G/B/U3/t-topic-delta": 1}
        sub = agreement_subtree(small_tree, counts, 1)
        assert {"G/A/U1/t-topic-alpha", "G/B/U3/t-topic-delta"} <= set(sub.node_ids())

    def test_unknown_tags_ignored(self, small_tree):
        sub = agreement_subtree(small_tree, {"not-a-node": 10}, 1)
        assert set(sub.node_ids()) == {"G"}

    def test_rejects_bad_threshold(self, small_tree):
        with pytest.raises(ValueError):
            agreement_subtree(small_tree, {}, 0)

    def test_monotone_in_threshold(self, small_tree):
        counts = {t.id: i + 1 for i, t in enumerate(small_tree.tags())}
        prev = None
        for thr in (1, 2, 3, 4):
            sub = set(agreement_subtree(small_tree, counts, thr).node_ids())
            if prev is not None:
                assert sub <= prev
            prev = sub


class TestCommonAncestor:
    def test_same_unit(self, small_tree):
        lca = common_ancestor(
            small_tree, ["G/A/U1/t-topic-alpha", "G/A/U1/t-topic-beta"]
        )
        assert lca.id == "G/A/U1"

    def test_cross_area_is_root(self, small_tree):
        lca = common_ancestor(
            small_tree, ["G/A/U1/t-topic-alpha", "G/B/U3/t-topic-delta"]
        )
        assert lca.id == "G"

    def test_single_node_is_itself(self, small_tree):
        assert common_ancestor(small_tree, ["G/A/U1"]).id == "G/A/U1"

    def test_empty_rejected(self, small_tree):
        with pytest.raises(ValueError):
            common_ancestor(small_tree, [])
