"""Tests for repro.quality: rule fixtures, suppression, reporters, self-gate.

Each rule gets one *bad* snippet that must fire (exact code, line,
severity) and one *corrected* snippet that must stay silent — the
contract CONTRIBUTING.md demands of every new rule.
"""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.quality import (
    PARSE_ERROR_CODE,
    RULES,
    Severity,
    analyze_paths,
    fails_threshold,
    main as quality_main,
    record_from_finding,
    render_json,
    render_text,
    run_lint_code,
)
from repro.quality.report import JSON_VERSION, Record


def lint_sources(tmp_path, files, select=None):
    """Write ``{relative name: source}`` under ``tmp_path`` and analyze."""
    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return analyze_paths([str(tmp_path)], select=select)


def codes(result):
    return [f.code for f in result.findings]


class TestRPR101UnseededRandomness:
    def test_global_state_and_argless_ctor_fire(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import random
            import numpy as np

            def draw():
                x = np.random.rand(3)
                y = random.random()
                rng = np.random.default_rng()
                return x, y, rng
            """})
        assert codes(result) == ["RPR101"] * 3
        assert [f.line for f in result.findings] == [5, 6, 7]
        assert all(f.severity is Severity.ERROR for f in result.findings)
        assert "hidden global state" in result.findings[0].message

    def test_seeded_generator_is_silent(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                return rng.random(3)
            """})
        assert result.findings == []


class TestRPR102WallClock:
    def test_wall_clock_reads_fire(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
            """})
        assert codes(result) == ["RPR102", "RPR102"]
        assert [f.line for f in result.findings] == [5, 5]
        assert all(f.severity is Severity.ERROR for f in result.findings)

    def test_tz_aware_now_and_metrics_module_are_silent(self, tmp_path):
        result = lint_sources(tmp_path, {
            # datetime.now(tz) is an explicit choice, not ambient state.
            "mod.py": """\
                from datetime import datetime, timezone

                def stamp():
                    return datetime.now(timezone.utc)
                """,
            # The metrics module itself is the allowlisted timing home.
            "runtime/metrics.py": """\
                import time

                def tick():
                    return time.time()
                """,
        })
        assert result.findings == []


class TestRPR201UnpicklablePoolPayload:
    def test_lambda_nested_def_and_bound_method_fire(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            def dispatch(pool, parallel_map):
                helper = object()

                def nested(v):
                    return v

                pool.submit(lambda v: v, 1)
                parallel_map(nested, [1, 2])
                pool.submit(helper.method)
            """})
        assert codes(result) == ["RPR201"] * 3
        assert [f.line for f in result.findings] == [7, 8, 9]
        assert "lambda" in result.findings[0].message
        assert "nested" in result.findings[1].message
        assert "bound method" in result.findings[2].message

    def test_module_level_function_is_silent(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            def work(v):
                return v

            def dispatch(pool, parallel_map):
                pool.submit(work, 1)
                parallel_map(work, [1, 2])
            """})
        assert result.findings == []

    def test_subscripted_receiver_chain_fires(self, tmp_path):
        # The shard-query idiom: the bound method's receiver hides behind
        # a subscript (shards[i].search) or a longer attribute chain.
        result = lint_sources(tmp_path, {"mod.py": """\
            def fan_out(shards, queries, parallel_map):
                planner = object()
                for i in range(len(shards)):
                    parallel_map(shards[i].search, queries)
                parallel_map(planner.pool[0].run, queries)
            """})
        assert codes(result) == ["RPR201"] * 2
        assert [f.line for f in result.findings] == [4, 5]
        assert "'shards'" in result.findings[0].message
        assert "'planner'" in result.findings[1].message

    def test_module_level_receiver_chain_is_silent(self, tmp_path):
        # A chain rooted at a module-level name is not a function-local
        # instance; the existing bound-method heuristic leaves it alone.
        result = lint_sources(tmp_path, {"mod.py": """\
            REGISTRY = {"a": object()}

            def dispatch(parallel_map, queries):
                parallel_map(REGISTRY["a"].search, queries)
            """})
        assert result.findings == []


class TestRPR202CacheKeyCompleteness:
    NMF_BAD = """\
        from dataclasses import dataclass, field

        @dataclass
        class NMF:
            n_components: int
            solver: str = "mu"
            shiny_new_knob: float = 0.5
            components_: object = field(default=None, repr=False)
        """
    KEYS_BAD = 'NMF_KEY_PARAMS: tuple[str, ...] = ("n_components", "solver", "ghost_param")\n'

    def test_missing_field_and_stale_param_fire(self, tmp_path):
        result = lint_sources(tmp_path, {
            "nmf.py": self.NMF_BAD,
            "cache.py": self.KEYS_BAD,
        })
        assert sorted(codes(result)) == ["RPR202", "RPR202"]
        stale = next(f for f in result.findings if "ghost_param" in f.message)
        missing = next(f for f in result.findings if "shiny_new_knob" in f.message)
        assert stale.path.endswith("cache.py") and stale.line == 1
        assert missing.path.endswith("nmf.py") and missing.line == 7
        assert all(f.severity is Severity.ERROR for f in result.findings)

    def test_lockstep_declaration_is_silent(self, tmp_path):
        result = lint_sources(tmp_path, {
            "nmf.py": """\
                from dataclasses import dataclass, field

                @dataclass
                class NMF:
                    n_components: int
                    solver: str = "mu"
                    components_: object = field(default=None, repr=False)
                """,
            "cache.py": 'NMF_KEY_PARAMS = ("n_components", "solver", "W0", "H0")\n',
        })
        assert result.findings == []

    def test_half_alone_is_silent(self, tmp_path):
        # Without both the dataclass and the key list in view, the
        # cross-file rule cannot (and must not) judge.
        assert lint_sources(tmp_path, {"nmf.py": self.NMF_BAD}).findings == []


class TestRPR301MetricNames:
    def test_bad_and_dynamic_names_fire(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            def record(metrics, flag):
                metrics.inc("CamelCase")
                metrics.inc("nodots")
                metrics.inc("a.b" if flag else "c.d")
            """})
        assert codes(result) == ["RPR301"] * 3
        assert [f.line for f in result.findings] == [2, 3, 4]
        assert all(f.severity is Severity.WARNING for f in result.findings)
        assert "not dotted-lowercase" in result.findings[0].message
        assert "string literal" in result.findings[2].message

    def test_dotted_lowercase_literals_are_silent(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            def record(metrics, flag):
                metrics.inc("quality.files")
                if flag:
                    metrics.inc("runtime.nmf_strategy.pool")
                else:
                    metrics.inc("runtime.nmf_strategy.serial")
                with metrics.timer("repo.search.plan"):
                    pass
            """})
        assert result.findings == []


class TestRPR401CurriculumInvariants:
    BAD_TABLES = {
        "curriculum/cs2013.py": """\
            from schema import AreaSpec, UnitSpec, T, O

            AL = AreaSpec("AL", "Algorithms", units=[
                UnitSpec("BAS", "Basics", topics=[
                    T("Sorting"),
                    T("Sorting"),
                ]),
                UnitSpec("BAS", "Basics again"),
            ])
            APPLICATIONS = AreaSpec("AL", "Duplicate area")
            EXTRA_UNITS = {"NOPE": [UnitSpec("X", "Extra", topics=[T("thing")])]}
            CS2013_TO_CS2023 = {"AL": "AL", "ZZ": "QQ"}
            """,
        "curriculum/cs2023.py": 'CS2023_AREAS = (("AL", "Algorithmic Foundations"),)\n',
        "curriculum/pdc12.py": """\
            from schema import AreaSpec, UnitSpec, T

            ARCH = AreaSpec("ARCH", "Architecture", units=[
                UnitSpec("C", "Classes", topics=[T("Flynn taxonomy")]),
            ])
            """,
        "curriculum/crosswalk.py": """\
            _LABEL_LINKS = [
                ("Flynn taxonomy", ["Sorting"]),
                ("Missing topic", ["No such target"]),
                ("Flynn taxonomy", ["Sorting"]),
            ]
            """,
    }

    def test_every_invariant_fires(self, tmp_path):
        result = lint_sources(tmp_path, self.BAD_TABLES)
        assert set(codes(result)) == {"RPR401"}
        assert all(f.severity is Severity.ERROR for f in result.findings)
        messages = "\n".join(f.message for f in result.findings)
        assert "duplicate cs2013 area code 'AL'" in messages
        assert "duplicate unit code 'BAS'" in messages
        assert "duplicate topic label 'Sorting'" in messages
        assert "unknown cs2013 area 'NOPE'" in messages
        assert "migration source 'ZZ'" in messages
        assert "migration target 'QQ'" in messages
        assert "duplicate crosswalk source 'Flynn taxonomy'" in messages
        assert "crosswalk source 'Missing topic' does not exist" in messages
        assert "crosswalk target 'No such target' does not exist" in messages
        assert "crosswalk target 'Sorting' is ambiguous" in messages

    def test_consistent_tables_are_silent(self, tmp_path):
        result = lint_sources(tmp_path, {
            "curriculum/cs2013.py": """\
                from schema import AreaSpec, UnitSpec, T

                AL = AreaSpec("AL", "Algorithms", units=[
                    UnitSpec("BAS", "Basics", topics=[T("Sorting")]),
                ])
                CS2013_TO_CS2023 = {"AL": "AL"}
                """,
            "curriculum/cs2023.py": 'CS2023_AREAS = (("AL", "Algorithmic Foundations"),)\n',
            "curriculum/pdc12.py": """\
                from schema import AreaSpec, UnitSpec, T

                ARCH = AreaSpec("ARCH", "Architecture", units=[
                    UnitSpec("C", "Classes", topics=[T("Flynn taxonomy")]),
                ])
                """,
            "curriculum/crosswalk.py": '_LABEL_LINKS = [("Flynn taxonomy", ["Sorting"])]\n',
        })
        assert result.findings == []


class TestSuppression:
    BAD_LINE = """\
        import numpy as np

        x = np.random.rand(3)  # repro: noqa[RPR101]
        """

    def test_coded_noqa_suppresses(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": self.BAD_LINE})
        assert result.findings == []
        assert result.n_suppressed == 1

    def test_bare_noqa_suppresses_any_code(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import numpy as np

            x = np.random.rand(3)  # repro: noqa
            """})
        assert result.findings == []
        assert result.n_suppressed == 1

    def test_wrong_code_does_not_suppress(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import numpy as np

            x = np.random.rand(3)  # repro: noqa[RPR301]
            """})
        assert codes(result) == ["RPR101"]
        assert result.n_suppressed == 0

    def test_noqa_covers_multiline_statement(self, tmp_path):
        """A noqa on any physical line of a statement covers the whole
        statement — findings anchor to the line of the offending *node*,
        which for a wrapped call is not necessarily the comment's line."""
        result = lint_sources(tmp_path, {"mod.py": """\
            import numpy as np

            x = np.random.normal(  # repro: noqa[RPR101]
                0.0,
                1.0,
                size=(3, 3),
            )
            """})
        assert result.findings == []
        assert result.n_suppressed == 1

    def test_noqa_on_last_line_of_statement(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import numpy as np

            x = np.random.normal(
                0.0,
                1.0,
            )  # repro: noqa[RPR101]
            """})
        assert result.findings == []
        assert result.n_suppressed == 1

    def test_noqa_in_compound_header_does_not_leak_to_body(self, tmp_path):
        """A noqa on a ``with``/``def`` header suppresses only the header
        line(s), never the whole suite underneath."""
        result = lint_sources(tmp_path, {"mod.py": """\
            import numpy as np

            def f():  # repro: noqa[RPR101]
                return np.random.rand(3)
            """})
        assert codes(result) == ["RPR101"]


class TestEngine:
    def test_unparseable_file_yields_rpr000(self, tmp_path):
        result = lint_sources(tmp_path, {"broken.py": "def oops(:\n"})
        assert codes(result) == [PARSE_ERROR_CODE]
        assert result.findings[0].severity is Severity.ERROR

    def test_select_restricts_rules(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import time
            import numpy as np

            x = np.random.rand(3)
            t = time.time()
            """}, select=["RPR102"])
        assert codes(result) == ["RPR102"]

    def test_unknown_select_raises(self, tmp_path):
        with pytest.raises(ValueError):
            lint_sources(tmp_path, {"mod.py": "x = 1\n"}, select=["RPR999"])

    def test_findings_sorted_and_registry_complete(self, tmp_path):
        assert set(RULES) == {
            "RPR101", "RPR102", "RPR201", "RPR202", "RPR301", "RPR401",
            "RPR501", "RPR502", "RPR503", "RPR504",
        }
        result = lint_sources(tmp_path, {
            "b.py": "import numpy as np\nx = np.random.rand()\n",
            "a.py": "import numpy as np\nx = np.random.rand()\n",
        })
        paths = [f.path for f in result.findings]
        assert paths == sorted(paths)


class TestReporters:
    def _records(self, tmp_path):
        result = lint_sources(tmp_path, {"mod.py": """\
            import numpy as np

            def f(metrics):
                x = np.random.rand(3)
                metrics.inc("nodots")
            """})
        return [record_from_finding(f) for f in result.findings], result

    def test_json_schema(self, tmp_path):
        records, result = self._records(tmp_path)
        payload = json.loads(render_json(
            records, tool="repro.quality", n_files=len(result.files)
        ))
        assert payload["version"] == JSON_VERSION
        assert payload["tool"] == "repro.quality"
        assert payload["summary"] == {
            "errors": 1, "warnings": 1, "findings": 2, "files": 1,
        }
        assert len(payload["findings"]) == 2
        first = payload["findings"][0]
        assert first["code"] == "RPR101"
        assert first["severity"] == "error"
        assert first["line"] == 4
        assert first["location"].endswith("mod.py:4:8")

    def test_text_summary_tail(self, tmp_path):
        records, result = self._records(tmp_path)
        text = render_text(records, n_files=len(result.files))
        assert text.splitlines()[-1] == "1 error(s), 1 warning(s) across 1 file(s)"

    def test_fails_threshold(self, tmp_path):
        warning_only = [Record(
            code="RPR301", severity="warning", message="m", location="x:1:0",
        )]
        assert not fails_threshold(warning_only, "error")
        assert fails_threshold(warning_only, "warning")
        assert not fails_threshold([], "warning")


class TestCLI:
    def test_module_entry_point_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("import numpy as np\nx = np.random.rand()\n")
        assert quality_main([str(bad)]) == 1
        assert "RPR101" in capsys.readouterr().out
        good = tmp_path / "ok.py"
        good.write_text("x = 1\n")
        assert quality_main([str(good)]) == 0

    def test_fail_on_warning_escalates(self, tmp_path):
        warn = tmp_path / "mod.py"
        warn.write_text('def f(metrics):\n    metrics.inc("nodots")\n')
        _, status = run_lint_code([str(warn)], fail_on="error")
        assert status == 0
        _, status = run_lint_code([str(warn)], fail_on="warning")
        assert status == 1

    def test_repro_lint_code_subcommand(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        bad = tmp_path / "mod.py"
        bad.write_text("import numpy as np\nx = np.random.rand()\n")
        status = cli_main(["lint-code", str(bad), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        assert payload["tool"] == "repro.quality"
        assert payload["findings"][0]["code"] == "RPR101"


class TestBaseline:
    BAD = "import numpy as np\nx = np.random.rand()\ny = np.random.rand()\n"

    def test_write_then_apply_silences_known_findings(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        bad = tmp_path / "mod.py"
        bad.write_text(self.BAD)
        baseline = tmp_path / "baseline.json"
        assert cli_main([
            "lint-code", str(bad), "--write-baseline", str(baseline),
        ]) == 0
        capsys.readouterr()
        doc = json.loads(baseline.read_text())
        assert doc["version"] == 1
        assert doc["entries"][0]["count"] == 2
        assert cli_main([
            "lint-code", str(bad), "--baseline", str(baseline),
        ]) == 0
        assert "2 finding(s) matched the baseline" in capsys.readouterr().out

    def test_new_findings_still_fail(self, tmp_path):
        from repro.quality import write_baseline
        from repro.quality.engine import analyze_paths as ap

        bad = tmp_path / "mod.py"
        bad.write_text(self.BAD)
        write_baseline(tmp_path / "b.json", ap([str(bad)]).findings)
        bad.write_text(self.BAD + "z = np.random.rand()\n")
        _, status = run_lint_code(
            [str(bad)], baseline=str(tmp_path / "b.json")
        )
        assert status == 1

    def test_line_edits_do_not_unacknowledge(self, tmp_path):
        from repro.quality import write_baseline
        from repro.quality.engine import analyze_paths as ap

        bad = tmp_path / "mod.py"
        bad.write_text(self.BAD)
        write_baseline(tmp_path / "b.json", ap([str(bad)]).findings)
        bad.write_text("import numpy as np\n\n\n" + self.BAD.split("\n", 1)[1])
        _, status = run_lint_code(
            [str(bad)], baseline=str(tmp_path / "b.json")
        )
        assert status == 0

    def test_version_mismatch_rejected(self, tmp_path):
        from repro.quality import load_baseline

        stale = tmp_path / "b.json"
        stale.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(stale)


class TestParallelJobs:
    def test_jobs_matches_serial_byte_for_byte(self):
        """``--jobs N`` must be a pure perf knob: identical report text."""
        package_root = Path(repro.__file__).parent
        serial, s_status = run_lint_code([str(package_root)], fmt="json")
        para, p_status = run_lint_code([str(package_root)], fmt="json", jobs=2)
        assert serial == para
        assert s_status == p_status == 0

    def test_jobs_sees_findings_and_suppressions(self, tmp_path):
        files = {
            f"m{i}.py": "import numpy as np\nx = np.random.rand()\n"
            for i in range(5)
        }
        files["ok.py"] = (
            "import numpy as np\nx = np.random.rand()  # repro: noqa\n"
        )
        for name, source in files.items():
            (tmp_path / name).write_text(source)
        serial = analyze_paths([str(tmp_path)])
        parallel = analyze_paths([str(tmp_path)], jobs=3)
        assert [str(f) for f in parallel.findings] == [
            str(f) for f in serial.findings
        ]
        assert parallel.n_suppressed == serial.n_suppressed == 1


class TestSelfGate:
    def test_src_repro_is_clean(self):
        """The codebase passes its own linter — zero findings, no noqa debt."""
        package_root = Path(repro.__file__).parent
        result = analyze_paths([str(package_root)])
        assert result.findings == [], "\n".join(str(f) for f in result.findings)
        assert len(result.files) > 50  # sanity: the walk actually saw the tree

    def test_lock_graph_export_is_meaningful(self, tmp_path):
        """The RPR504 graph over src/repro names the real locks and has
        no cycles — the artifact CI uploads is not an empty stub."""
        from repro.cli import main as cli_main

        package_root = Path(repro.__file__).parent
        out = tmp_path / "lock-graph.json"
        status = cli_main([
            "lint-code", str(package_root),
            "--select", "RPR504", "--lock-graph-out", str(out),
        ])
        assert status == 0
        doc = json.loads(out.read_text())
        assert doc["version"] == 1
        nodes = {n["id"] for n in doc["nodes"]}
        assert any("MetricsRegistry" in n for n in nodes)
        assert any("LockSanitizer" in n for n in nodes)
        assert doc["cycles"] == []
        assert len(doc["edges"]) >= 1
