"""Every example script must run cleanly from a fresh process."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, tmp_path):
    args = [sys.executable, str(script)]
    if script.name == "classify_a_course.py":
        args.append(str(tmp_path / "out.svg"))
    proc = subprocess.run(
        args, capture_output=True, text=True, timeout=600, cwd=tmp_path,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_example_inventory():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3, "the deliverable requires at least three examples"
