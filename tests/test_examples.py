"""Every example script must run cleanly from a fresh process."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def _example_env() -> dict[str, str]:
    """Subprocess environment with ``<repo>/src`` importable.

    The test process may know about ``src`` only through its own
    ``sys.path`` (pytest rootdir tricks, editable installs, a ``.pth``
    file); a child interpreter inherits none of that, so ``repro`` must be
    put on PYTHONPATH explicitly.  The repo root is derived from this
    file's location — the tests run from any CWD.
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    prior = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not prior else src + os.pathsep + prior
    return env


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, tmp_path):
    args = [sys.executable, str(script)]
    if script.name == "classify_a_course.py":
        args.append(str(tmp_path / "out.svg"))
    proc = subprocess.run(
        args, capture_output=True, text=True, timeout=600, cwd=tmp_path,
        env=_example_env(),
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_example_inventory():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3, "the deliverable requires at least three examples"
