"""Service-layer suite (PR 8).

Three contracts under test:

* **coalescing** — concurrent requests micro-batch into single kernel
  calls (batch sizes > 1, dedup, one ``search_many`` per burst) and the
  ``coalesce=False`` baseline flows through the same dispatch code;
* **bit-identity** — every served JSON document equals the one computed
  by direct library calls (floats survive JSON via repr round-trip);
* **draining** — in-flight requests complete during shutdown, queued
  broker batches flush, and no resident shard worker outlives the
  service.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro.runtime as runtime
from repro.analysis import analyze_flavors, build_course_matrix, type_courses
from repro.anchors.recommender import recommend_for_course
from repro.factorization.nmf import nmf_restart_specs
from repro.materials import CourseLabel, coverage
from repro.runtime import run_nmf_fits
from repro.runtime.metrics import metrics
from repro.service import (
    BrokerClosed,
    NmfJob,
    ReproService,
    RequestBroker,
    SearchJob,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceState,
    parse_mix,
    parse_query,
    run_load,
)
from repro.service.loadgen import _quantile


@pytest.fixture(autouse=True)
def _isolated_runtime():
    runtime.reset()
    yield
    runtime.reset()


@pytest.fixture(scope="module")
def service(dataset):
    tree, courses, _ = dataset
    state = ServiceState(
        tree, courses,
        config=ServiceConfig(n_shards=3, window_s=0.005),
    )
    with ReproService(state) as svc:
        yield svc


@pytest.fixture()
def client(service):
    host, port = service.address
    with ServiceClient(host, port) as c:
        yield c


def _json_roundtrip(doc):
    return json.loads(json.dumps(doc))


# -- broker ------------------------------------------------------------------


def _err_specs(a, seed, n=2):
    return nmf_restart_specs(a, 2, seed=seed, n_restarts=n)


def _errs_job(a, seed):
    return NmfJob(
        matrix=a,
        group=id(a),
        specs=_err_specs(a, seed),
        finish=lambda bundles: [float(b["err"]) for b in bundles],
        dedup_key=("t", seed),
    )


class TestBroker:
    @pytest.fixture()
    def a(self):
        rng = np.random.default_rng(3)
        return np.abs(rng.normal(size=(18, 12)))

    def test_concurrent_requests_coalesce_and_match_direct(self, a):
        broker = RequestBroker(window_s=0.05, max_batch=32)
        try:
            seeds = list(range(6))
            with ThreadPoolExecutor(max_workers=6) as pool:
                futs = list(pool.map(
                    lambda s: broker.submit_nmf(_errs_job(a, s)), seeds
                ))
                got = [f.result(timeout=60) for f in futs]
        finally:
            broker.close()
        for seed, errs in zip(seeds, got):
            direct = [
                float(b["err"])
                for b in run_nmf_fits(a, _err_specs(a, seed))
            ]
            assert errs == direct
        hist = metrics.histogram("broker.nmf.batch_size")
        assert hist is not None and hist.max_value > 1.0

    def test_identical_requests_dedupe_to_one_solve(self, a):
        broker = RequestBroker(window_s=0.05)
        try:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futs = list(pool.map(
                    lambda _: broker.submit_nmf(_errs_job(a, 9)), range(4)
                ))
                got = [f.result(timeout=60) for f in futs]
        finally:
            broker.close()
        assert got[0] == got[1] == got[2] == got[3]
        snap = metrics.snapshot()["counters"]
        assert snap.get("broker.nmf.deduped", 0) >= 1

    def test_inline_baseline_matches_coalesced(self, a):
        coalesced = RequestBroker(window_s=0.05)
        inline = RequestBroker(coalesce=False)
        try:
            lhs = coalesced.submit_nmf(_errs_job(a, 4)).result(timeout=60)
            rhs = inline.submit_nmf(_errs_job(a, 4)).result(timeout=60)
        finally:
            coalesced.close()
            inline.close()
        assert lhs == rhs

    def test_search_burst_is_one_backend_call(self):
        calls = []

        def search_many(queries, *, tree, limit):
            calls.append(len(queries))
            return [[(q, limit)] for q in queries]

        broker = RequestBroker(search_many=search_many, window_s=0.05)
        try:
            def job(i):
                return SearchJob(
                    queries=[f"q{i}", f"r{i}"], tree=None, limit=7,
                    finish=lambda per_query: list(per_query),
                )

            with ThreadPoolExecutor(max_workers=5) as pool:
                futs = list(pool.map(
                    lambda i: broker.submit_search(job(i)), range(5)
                ))
                got = [f.result(timeout=30) for f in futs]
        finally:
            broker.close()
        assert calls == [10]  # one flattened backend call for the burst
        for i, per_query in enumerate(got):
            assert per_query == [[(f"q{i}", 7)], [(f"r{i}", 7)]]

    def test_request_failure_does_not_poison_batch(self, a):
        broker = RequestBroker(window_s=0.05)
        bad = NmfJob(
            matrix=a, group=id(a), specs=_err_specs(a, 1),
            finish=lambda bundles: 1 / 0,
        )
        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                f_bad = pool.submit(broker.submit_nmf, bad).result()
                f_ok = pool.submit(broker.submit_nmf, _errs_job(a, 2)).result()
            with pytest.raises(ZeroDivisionError):
                f_bad.result(timeout=60)
            assert f_ok.result(timeout=60)  # sibling request unharmed
        finally:
            broker.close()

    def test_close_drains_queued_jobs_then_rejects(self, a):
        broker = RequestBroker(window_s=5.0)  # window longer than the test
        fut = broker.submit_nmf(_errs_job(a, 5))
        broker.close()  # must flush the in-window batch, not drop it
        assert fut.result(timeout=60)
        with pytest.raises(BrokerClosed):
            broker.submit_nmf(_errs_job(a, 6))

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="window_s"):
            RequestBroker(window_s=-0.1)
        with pytest.raises(ValueError, match="max_batch"):
            RequestBroker(max_batch=0)


# -- bit-identity ------------------------------------------------------------


class TestBitIdentity:
    def test_typing_matches_direct_library_call(self, service, client, dataset):
        _, courses, matrix = dataset
        status, doc = client.post(
            "/typing", {"k": 4, "seed": 11, "n_restarts": 2}
        )
        assert status == 200
        direct = type_courses(
            service.state.matrix, 4, seed=11, n_restarts=2
        )
        assert doc["reconstruction_err"] == direct.reconstruction_err
        assert doc["w"] == _json_roundtrip(direct.w.tolist())
        assert doc["course_ids"] == list(direct.matrix.course_ids)
        assert doc["dominant_types"] == {
            cid: direct.dominant_type(cid)
            for cid in direct.matrix.course_ids
        }

    def test_flavors_matches_direct_library_call(self, service, client, dataset):
        tree, courses, _ = dataset
        status, doc = client.post(
            "/flavors", {"k": 3, "seed": 2, "n_restarts": 2, "label": "CS1"},
        )
        assert status == 200
        family = build_course_matrix(
            list(courses), tree=tree, label=CourseLabel.CS1
        )
        direct = analyze_flavors(family, tree, 3, seed=2, n_restarts=2)
        assert doc["reconstruction_err"] == direct.typing.reconstruction_err
        assert doc["strongest_courses"] == [
            direct.strongest_course(t) for t in range(direct.k)
        ]
        for served, prof in zip(doc["profiles"], direct.profiles):
            assert served["describe"] == prof.describe()
            assert served["area_mass"] == _json_roundtrip(
                dict(sorted(prof.area_mass.items()))
            )
            assert served["top_tags"] == _json_roundtrip(
                [[t, v] for t, v in prof.top_tags]
            )

    def test_anchors_explicit_flavors_matches_recommender(
        self, service, client, dataset
    ):
        _, courses, _ = dataset
        course = courses[0]
        status, doc = client.post(
            "/anchors",
            {"course_id": course.id, "flavors": ["cs1-algorithmic"], "top": 4},
        )
        assert status == 200 and doc["discovered"] is False
        direct = recommend_for_course(course, flavors=["cs1-algorithmic"])
        assert len(doc["recommendations"]) == min(4, len(direct.recommendations))
        for served, rec in zip(doc["recommendations"], direct.top(4)):
            assert served["module"] == rec.module.id
            assert served["score"] == rec.score
            assert served["anchor_coverage"] == rec.anchor_coverage
            assert served["missing_anchors"] == list(rec.missing_anchors)

    def test_anchors_discovery_rides_the_nmf_lane(self, service, client):
        course_id = service.state.matrix.course_ids[0]
        status, doc = client.post(
            "/anchors", {"course_id": course_id, "seed": 3, "n_restarts": 2}
        )
        assert status == 200 and doc["discovered"] is True
        assert doc["exemplar"] in service.state.matrix.course_ids
        # the discovered flavor must be the exemplar's dominant archetype
        mixture = service.state._mixtures.get(doc["exemplar"])
        if mixture:
            assert doc["flavors"] == [max(mixture, key=lambda a: mixture[a])]

    def test_coverage_matches_direct(self, service, client, dataset):
        tree, courses, _ = dataset
        course = courses[3]
        status, doc = client.post("/coverage", {"course_id": course.id})
        assert status == 200
        direct = coverage(course, tree)
        assert doc["fraction"] == direct.fraction
        assert doc["core1"] == [direct.core1_covered, direct.core1_total]
        assert doc["by_area"] == _json_roundtrip(
            {a: list(v) for a, v in sorted(direct.by_area.items())}
        )
        assert doc["meets_core_requirements"] == direct.meets_core_requirements()

    def test_search_matches_repository(self, service, client):
        tags = list(service.state.matrix.tag_ids[:2])
        status, doc = client.post(
            "/search", {"queries": [{"tags": tags}, {"text": "lab"}], "limit": 5},
        )
        assert status == 200
        direct = service.state.repo.search_many(
            [parse_query({"tags": tags}), parse_query({"text": "lab"})],
            tree=service.state.tree,
            limit=5,
        )
        assert doc["results"] == [
            [{"id": r.material.id, "score": r.score} for r in hits]
            for hits in direct
        ]

    def test_similar_matches_repository(self, service, client):
        material_id = next(service.state.repo.materials()).id
        status, doc = client.post(
            "/similar", {"material_id": material_id, "limit": 4}
        )
        assert status == 200
        direct = service.state.repo.find_similar(material_id, limit=4)
        assert doc["results"] == [
            {"id": r.material.id, "score": r.score} for r in direct
        ]

    def test_concurrent_mixed_seeds_each_match_direct(self, service):
        """Coalesced batches slice correctly: every request in a concurrent
        burst gets exactly the solve its own parameters demand."""
        host, port = service.address
        seeds = list(range(8))

        def fetch(seed):
            with ServiceClient(host, port) as c:
                return c.post(
                    "/typing", {"k": 4, "seed": seed, "n_restarts": 2}
                )

        with ThreadPoolExecutor(max_workers=8) as pool:
            got = list(pool.map(fetch, seeds))
        for seed, (status, doc) in zip(seeds, got):
            assert status == 200
            direct = type_courses(
                service.state.matrix, 4, seed=seed, n_restarts=2
            )
            assert doc["reconstruction_err"] == direct.reconstruction_err
            assert doc["w"] == _json_roundtrip(direct.w.tolist())


# -- HTTP surface ------------------------------------------------------------


class TestHttpSurface:
    def test_healthz_and_metrics(self, service, client):
        status, doc = client.get("/healthz")
        assert status == 200 and doc["status"] == "ok"
        assert doc["resident_workers"] == service.state.repo.n_shards
        status, doc = client.get("/metrics")
        assert status == 200
        assert {"counters", "timers", "histograms", "failures"} <= set(doc)

    def test_corpus_lists_what_loadgen_needs(self, service, client):
        status, doc = client.get("/corpus")
        assert status == 200
        assert doc["course_ids"] and doc["material_ids"] and doc["tag_ids"]
        assert doc["n_materials"] == service.state.repo.n_materials

    def test_get_with_query_string(self, service, client):
        course_id = service.state.matrix.course_ids[0]
        status, doc = client.get(f"/coverage?course_id={course_id}")
        assert status == 200 and doc["course_id"] == course_id

    @pytest.mark.parametrize(
        "path,body,status,fragment",
        [
            ("/nosuch", {}, 404, "no route"),
            ("/typing", {"k": "wat"}, 400, "k must be an integer"),
            ("/typing", {"k": 0}, 400, "k must be >= 1"),
            ("/typing", {"label": "Quantum"}, 400, "label must be one of"),
            ("/coverage", {}, 400, "course_id is required"),
            ("/coverage", {"course_id": "ghost"}, 404, "no course"),
            ("/similar", {"material_id": "ghost"}, 404, "no material"),
            ("/search", {}, 400, "provide 'query' or 'queries'"),
            ("/search", {"queries": [{"tags": "oops"}]}, 400, "list of strings"),
            ("/search", {"queries": [{"nope": 1}]}, 400, "unknown query fields"),
            ("/anchors", {"course_id": "ghost"}, 404, "no course"),
        ],
    )
    def test_request_errors(self, client, path, body, status, fragment):
        got_status, doc = client.post(path, body)
        assert got_status == status
        assert fragment in doc["error"]

    def test_invalid_json_body_is_400(self, service):
        import http.client as hc

        host, port = service.address
        conn = hc.HTTPConnection(host, port, timeout=30)
        try:
            conn.request(
                "POST", "/typing", body=b"{nope",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 400
            assert "invalid JSON body" in doc["error"]
        finally:
            conn.close()

    def test_latency_histograms_recorded(self, service, client):
        client.get("/healthz")
        status, doc = client.get("/metrics")
        assert status == 200
        hist = doc["histograms"].get("service.latency.healthz")
        assert hist is not None and hist["count"] >= 1
        assert hist["p99"] >= hist["p50"] > 0


# -- draining and shutdown ---------------------------------------------------


class TestDraining:
    def test_close_completes_inflight_and_reaps_workers(self, dataset):
        tree, courses, _ = dataset
        state = ServiceState(
            tree, courses,
            config=ServiceConfig(n_shards=2, window_s=0.2, max_batch=64),
        )
        service = ReproService(state)
        host, port = service.start()
        pids = state.repo.resident.pids()
        assert len(pids) == 2 and all(p for p in pids)

        results = {}

        def slow_request():
            with ServiceClient(host, port) as c:
                # lands in a 200ms coalescing window, so close() must
                # wait for both the handler thread and the broker flush
                results["typing"] = c.post(
                    "/typing", {"k": 3, "seed": 41, "n_restarts": 2}
                )

        t = threading.Thread(target=slow_request)
        t.start()
        time.sleep(0.05)  # request is in flight / in window
        final = service.close()
        t.join(timeout=30)
        assert not t.is_alive()
        status, doc = results["typing"]
        assert status == 200 and doc["k"] == 3

        # resident shard workers are reaped, not orphaned
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        # this service's broker lane threads are gone (other services'
        # lanes may coexist in the process)
        for lane in (service.broker._nmf_lane, service.broker._search_lane):
            assert lane is not None and not lane._thread.is_alive()
        assert final is service.final_metrics
        assert final["counters"].get("service.shutdowns") == 1

        # new connections are refused after close
        with pytest.raises(OSError):
            with ServiceClient(host, port, timeout=2) as c:
                c.get("/healthz")

    def test_close_is_idempotent(self, dataset):
        tree, courses, _ = dataset
        state = ServiceState(
            tree, courses, config=ServiceConfig(n_shards=2, resident=False)
        )
        service = ReproService(state)
        service.start()
        first = service.close()
        assert service.close() is first


# -- state validation and config ---------------------------------------------


class TestState:
    def test_family_matrix_cached_and_stable(self, service):
        lhs = service.state.family_matrix("CS1")
        rhs = service.state.family_matrix("CS1")
        assert lhs is rhs  # stable object => stable broker group token

    def test_family_matrix_unknown_label(self, service):
        with pytest.raises(ServiceError) as err:
            service.state.family_matrix("Quantum")
        assert err.value.status == 400

    def test_parse_query_roundtrips_filters(self):
        q = parse_query({
            "tags": ["t1", "t2"], "text": "x", "type": "lab",
            "min_mastery": "usage", "min_bloom": "apply",
        })
        assert q.tags == frozenset({"t1", "t2"})
        assert q.mtype is not None and q.mtype.value == "lab"
        with pytest.raises(ServiceError):
            parse_query({"type": "hologram"})
        with pytest.raises(ServiceError):
            parse_query("not-a-dict")


# -- load generator ----------------------------------------------------------


class TestLoadgen:
    def test_parse_mix(self):
        assert parse_mix("search=4,typing=1") == {"search": 4.0, "typing": 1.0}
        assert parse_mix("coverage") == {"coverage": 1.0}
        with pytest.raises(ValueError, match="unknown endpoint"):
            parse_mix("teleport=1")
        with pytest.raises(ValueError, match="empty"):
            parse_mix("search=0")

    def test_quantile_exact(self):
        values = sorted(float(v) for v in range(1, 101))
        assert _quantile(values, 0.50) == 50.0
        assert _quantile(values, 0.99) == 99.0
        assert _quantile([], 0.5) == 0.0

    def test_closed_loop_run_has_zero_errors(self, service):
        host, port = service.address
        report = run_load(
            host, port,
            concurrency=4,
            duration_s=None,
            requests_per_worker=6,
            seed=5,
            nmf_restarts=2,
        )
        assert report.total_requests == 24
        assert report.total_errors == 0
        assert report.requests_per_s > 0
        for stats in report.endpoints.values():
            assert stats["errors"] == 0
            assert stats["p99_s"] >= stats["p50_s"] > 0
        assert "0 errors" in report.summary()

    def test_reproducible_workload(self, service):
        host, port = service.address
        kwargs = dict(
            concurrency=2, duration_s=None, requests_per_worker=5,
            seed=9, nmf_restarts=2,
        )
        lhs = run_load(host, port, **kwargs)
        rhs = run_load(host, port, **kwargs)
        assert (
            {k: v["count"] for k, v in lhs.endpoints.items()}
            == {k: v["count"] for k, v in rhs.endpoints.items()}
        )


# -- overload: admission, deadlines, breakers, degraded mode ------------------


def _overload_service(dataset, **cfg):
    """A dedicated service with overload knobs turned for the test."""
    tree, courses, _ = dataset
    cfg.setdefault("n_shards", 2)
    cfg.setdefault("resident", False)
    state = ServiceState(tree, courses, config=ServiceConfig(**cfg))
    return ReproService(state)


def _raw_response(host, port, method, path, body=None):
    """One request via http.client so headers are observable."""
    import http.client as hc

    conn = hc.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        doc = json.loads(response.read() or b"{}")
        return response.status, dict(response.getheaders()), doc
    finally:
        conn.close()


class TestOverload:
    def test_deadline_504_leaves_batch_mates_unaffected(self, dataset):
        # Both requests land in one 250ms coalescing window; the tight
        # deadline expires first.  Its 504 must not disturb the
        # batch-mate, which rides the same dispatch to a 200.
        with _overload_service(dataset, window_s=0.25) as svc:
            host, port = svc.address
            results = {}

            def req(name, body, deadline_ms):
                with ServiceClient(host, port) as c:
                    results[name] = c.post(
                        "/typing", body, deadline_ms=deadline_ms
                    )

            tight = threading.Thread(target=req, args=(
                "tight", {"k": 3, "seed": 2101, "n_restarts": 2}, 100.0,
            ))
            roomy = threading.Thread(target=req, args=(
                "roomy", {"k": 3, "seed": 2102, "n_restarts": 2}, None,
            ))
            tight.start()
            roomy.start()
            tight.join(timeout=30)
            roomy.join(timeout=60)
            status, doc = results["tight"]
            assert status == 504 and doc["deadline_exceeded"] is True
            status, doc = results["roomy"]
            assert status == 200 and doc["k"] == 3
            assert metrics.get("broker.nmf.expired") >= 1

    def test_invalid_deadline_rejected(self, dataset):
        with _overload_service(dataset, window_s=0.005) as svc:
            host, port = svc.address
            with ServiceClient(host, port) as c:
                status, doc = c.post(
                    "/typing", {"k": 2, "deadline_ms": "soon"}
                )
                assert status == 400 and "deadline_ms" in doc["error"]
                status, doc = c.post(
                    "/typing", {"k": 2, "deadline_ms": -5}
                )
                assert status == 400

    def test_queue_full_sheds_503_with_retry_after(self, dataset):
        with _overload_service(
            dataset, window_s=0.3, max_inflight_heavy=1, max_queue_heavy=0,
        ) as svc:
            host, port = svc.address
            done = {}

            def occupy():
                with ServiceClient(host, port) as c:
                    done["slow"] = c.post(
                        "/typing", {"k": 3, "seed": 2103, "n_restarts": 2}
                    )

            t = threading.Thread(target=occupy)
            t.start()
            gate = svc.gates["heavy"]
            deadline = time.perf_counter() + 10.0
            while gate.snapshot()["inflight"] == 0:
                assert time.perf_counter() < deadline, "slot never claimed"
                time.sleep(0.005)
            status, headers, doc = _raw_response(
                host, port, "POST", "/typing", {"k": 3, "seed": 2104},
            )
            assert status == 503
            assert doc["shed"] is True and doc["reason"] == "queue_full"
            assert int(headers["Retry-After"]) >= 1
            assert metrics.get("service.shed.heavy") >= 1
            t.join(timeout=60)
            assert done["slow"][0] == 200  # the occupant was untouched

    def test_breaker_trip_serves_degraded_from_cache(self, dataset):
        with _overload_service(
            dataset, window_s=0.005, chaos_ops=True,
            breaker_recovery_s=60.0,
        ) as svc:
            host, port = svc.address
            with ServiceClient(host, port) as c:
                body = {"k": 3, "seed": 2105, "n_restarts": 2}
                status, warm = c.post("/typing", body)
                assert status == 200 and "degraded" not in warm

                status, doc = c.post(
                    "/chaos", {"op": "trip_breaker", "lane": "nmf"}
                )
                assert status == 200 and doc["ok"] is True
                status, health = c.get("/healthz")
                assert health["breakers"]["nmf"] == "open"

                # cached spec: served degraded, bit-identical payload
                status, degraded = c.post("/typing", body)
                assert status == 200 and degraded.pop("degraded") is True
                assert degraded == warm
                assert metrics.get("service.degraded") >= 1

                # uncached spec: fail-fast 503 naming the lane
                status, doc = c.post(
                    "/typing", {"k": 3, "seed": 2106, "n_restarts": 2}
                )
                assert status == 503 and doc["breaker"] == "nmf"

    def test_chaos_endpoint_gated_off_by_default(self, service, client):
        status, doc = client.post(
            "/chaos", {"op": "trip_breaker", "lane": "nmf"}
        )
        assert status == 404

    def test_drain_sheds_gate_queued_requests_fast(self, dataset):
        # Regression: a request queued *behind the admission gate* at
        # shutdown must get a fast 503, not hang the drain join.
        with _overload_service(
            dataset, window_s=0.3, max_inflight_heavy=1, max_queue_heavy=8,
        ) as svc:
            host, port = svc.address
            results = {}

            def occupant():
                with ServiceClient(host, port) as c:
                    results["occupant"] = c.post(
                        "/typing", {"k": 3, "seed": 2107, "n_restarts": 2}
                    )

            def queued():
                with ServiceClient(host, port) as c:
                    results["queued"] = c.post(
                        "/typing", {"k": 3, "seed": 2108, "n_restarts": 2}
                    )

            t1 = threading.Thread(target=occupant)
            t1.start()
            gate = svc.gates["heavy"]
            deadline = time.perf_counter() + 10.0
            while gate.snapshot()["inflight"] == 0:
                assert time.perf_counter() < deadline
                time.sleep(0.005)
            t2 = threading.Thread(target=queued)
            t2.start()
            while gate.snapshot()["waiting"] == 0:
                assert time.perf_counter() < deadline, "never queued"
                time.sleep(0.005)

            t0 = time.perf_counter()
            svc.close()
            drain_s = time.perf_counter() - t0
            t1.join(timeout=30)
            t2.join(timeout=30)
            assert not t1.is_alive() and not t2.is_alive()
            # the in-flight occupant finished; the queued one was shed
            assert results["occupant"][0] == 200
            status, doc = results["queued"]
            assert status == 503 and doc["reason"] == "draining"
            assert drain_s < 20.0

    def test_healthz_metrics_expose_overload_state(self, service, client):
        status, doc = client.get("/healthz")
        assert status == 200
        assert set(doc["breakers"]) == {"nmf", "search"}
        assert doc["admission"]["heavy"]["max_inflight"] >= 1
        status, doc = client.get("/metrics")
        assert doc["breakers"]["nmf"]["state"] in ("closed", "open", "half_open")
        assert "admission" in doc
