"""Tests for the incremental analysis DAG (:mod:`repro.pipeline`).

Covers the engine (content keys, wave execution, taskgraph export), the
report DAG's bit-identity with the straight-line path, invalidation
granularity under corpus edits (add / remove / tag-preserving update),
early cutoff, and chaos runs under ``REPRO_FAULTS``.
"""

import dataclasses

import numpy as np
import pytest

import repro.runtime as runtime
from repro.analysis import build_course_matrix
from repro.materials.course import CourseLabel
from repro.materials.material import Material, MaterialType
from repro.pipeline import (
    Pipeline,
    build_report_pipeline,
    course_digest,
    params_digest,
    value_digest,
)
from repro.report import FLAVOR_FAMILIES, ReportConfig, build_report, build_report_direct
from repro.runtime.cache import ResultCache
from repro.runtime.faults import set_fault_plan
from repro.runtime.metrics import metrics


@pytest.fixture(autouse=True)
def _isolated_runtime(monkeypatch):
    """Fresh metrics/cache and a disarmed fault plan per test."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    runtime.reset()
    set_fault_plan(None)
    yield
    runtime.reset()
    set_fault_plan(None)


# -- module-level node functions (picklable across the pool boundary) --------


def _const(value, dep_values):
    del dep_values
    return value


def _add(dep_values):
    return sum(dep_values.values())


def _double(dep_values):
    (v,) = dep_values.values()
    return 2 * v


# -- engine ------------------------------------------------------------------


class TestPipelineEngine:
    def _diamond(self, a=1):
        from functools import partial

        p = Pipeline()
        p.add("a", partial(_const, a), params={"a": a})
        p.add("b", _double, deps=("a",))
        p.add("c", _double, deps=("a",))
        p.add("d", _add, deps=("b", "c"))
        return p

    def test_run_values(self):
        run = self._diamond().run(workers=1, use_cache=False)
        assert run.value("d") == 4
        assert run.n_computed == 4 and run.n_hits == 0

    def test_duplicate_name_rejected(self):
        p = Pipeline()
        p.add("a", _add)
        with pytest.raises(ValueError, match="duplicate"):
            p.add("a", _add)

    def test_unknown_dep_rejected(self):
        p = Pipeline()
        with pytest.raises(ValueError, match="unregistered"):
            p.add("b", _double, deps=("a",))

    def test_bad_weight_rejected(self):
        p = Pipeline()
        with pytest.raises(ValueError, match="weight"):
            p.add("a", _add, weight=0.0)

    def test_warm_rerun_all_hits(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cold = self._diamond().run(workers=1, cache=cache)
        warm = self._diamond().run(workers=1, cache=cache)
        assert cold.n_computed == 4 and cold.n_hits == 0
        assert warm.n_hits == 4 and warm.n_computed == 0
        assert warm.value("d") == cold.value("d")

    def test_param_change_invalidates_downstream(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        self._diamond(a=1).run(workers=1, cache=cache)
        run = self._diamond(a=2).run(workers=1, cache=cache)
        assert run.n_hits == 0 and run.value("d") == 8

    def test_early_cutoff(self, tmp_path):
        """A recomputed-but-identical value stops invalidation cold.

        ``a`` keys on its params, ``b``/``c``/``d`` key on upstream
        *value* digests: two differently-parameterized ``a`` nodes that
        produce the same value replay everything downstream.
        """
        from functools import partial

        cache = ResultCache(cache_dir=tmp_path)
        p1 = Pipeline()
        p1.add("a", partial(_const, 5), params={"rev": 1})
        p1.add("b", _double, deps=("a",))
        p1.run(workers=1, cache=cache)

        p2 = Pipeline()
        p2.add("a", partial(_const, 5), params={"rev": 2})
        p2.add("b", _double, deps=("a",))
        run = p2.run(workers=1, cache=cache)
        assert run.records["a"].status == "computed"
        assert run.records["b"].status == "hit"

    def test_use_cache_false_never_reads_or_writes(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        self._diamond().run(workers=1, cache=cache)
        run = self._diamond().run(workers=1, cache=cache, use_cache=False)
        assert run.n_computed == 4 and run.n_hits == 0

    def test_to_taskgraph_metrics(self):
        g = self._diamond().to_taskgraph()
        assert g.n_tasks == 4 and g.n_edges == 4
        assert g.work() == pytest.approx(4.0)
        assert g.span() == pytest.approx(3.0)  # a -> b|c -> d
        assert set(g.topological_order()) == {"a", "b", "c", "d"}

    def test_digest_helpers_stable(self):
        assert params_digest({"b": 1, "a": 2}) == params_digest({"a": 2, "b": 1})
        assert value_digest(b"x") != value_digest(b"y")


# -- the report DAG ----------------------------------------------------------


def _tag_preserving_update(course):
    """Copy of ``course`` with one extra material that adds no new tags."""
    tags = sorted(course.tag_set())[:3]
    extra = Material(
        id=f"{course.id}-extra",
        title="redundant worksheet",
        mtype=MaterialType.LECTURE,
        mappings=frozenset(tags),
    )
    return dataclasses.replace(course, materials=[*course.materials, extra])


class TestReportPipeline:
    def test_cold_warm_bit_identity(self, dataset, tmp_path):
        tree, courses, _ = dataset
        courses = list(courses)
        cache = ResultCache(cache_dir=tmp_path)
        direct = build_report_direct(courses, tree)
        before_hits = metrics.get("pipeline.node_hit")
        cold = build_report_pipeline(courses, tree).run(cache=cache)
        warm = build_report_pipeline(courses, tree).run(cache=cache)
        assert cold.value("report") == direct
        assert warm.value("report") == direct
        assert cold.n_hits == 0 and cold.n_computed == len(cold.records)
        assert warm.n_computed == 0 and warm.n_hits == len(warm.records)
        assert metrics.get("pipeline.node_hit") - before_hits == warm.n_hits
        assert metrics.get("pipeline.runs") >= 2

    def test_build_report_engines_agree(self, dataset, tmp_path):
        tree, courses, _ = dataset
        courses = list(courses)
        cache = ResultCache(cache_dir=tmp_path)
        dag = build_report(courses, tree, engine="dag", cache=cache)
        direct = build_report(courses, tree, engine="direct")
        assert dag == direct
        with pytest.raises(ValueError, match="engine"):
            build_report(courses, tree, engine="bogus")

    def test_add_course_recomputes_only_downstream(self, dataset, tmp_path):
        tree, courses, _ = dataset
        courses = list(courses)
        cache = ResultCache(cache_dir=tmp_path)
        build_report_pipeline(courses, tree).run(cache=cache)

        new = dataclasses.replace(
            courses[0],
            id="zz-new-pdc",
            name="New PDC seminar",
            labels=frozenset({CourseLabel.PDC}),
        )
        run = build_report_pipeline([*courses, new], tree).run(cache=cache)
        computed = set(run.computed_nodes())
        hits = set(run.hit_nodes())
        # Whole-corpus stages see the new row.
        for name in ("matrix", "typing", "section:dataset", "section:types",
                     "anchors:zz-new-pdc", "section:anchors", "report"):
            assert name in computed, name
        # The new course is PDC-only: CS1/DS families and their memoized
        # factorizations are untouched, as is every old anchors row.
        for name in ("section:agreement:CS1", "section:agreement:DS",
                     "family-matrix:cs1", "section:flavors:cs1",
                     "family-matrix:ds", "section:flavors:ds"):
            assert name in hits, name
        for c in courses:
            assert f"anchors:{c.id}" in hits
        assert "section:agreement:PDC" in computed
        assert run.value("report") == build_report_direct([*courses, new], tree)

    def test_remove_course_recomputes_only_downstream(self, dataset, tmp_path):
        tree, courses, _ = dataset
        courses = list(courses)
        cache = ResultCache(cache_dir=tmp_path)
        build_report_pipeline(courses, tree).run(cache=cache)

        # Drop a PDC-only course so CS1/DS family nodes stay memoized.
        victim = next(
            c for c in courses
            if c.labels == frozenset({CourseLabel.PDC})
        )
        remaining = [c for c in courses if c.id != victim.id]
        run = build_report_pipeline(remaining, tree).run(cache=cache)
        hits = set(run.hit_nodes())
        computed = set(run.computed_nodes())
        for name in ("family-matrix:cs1", "section:flavors:cs1",
                     "family-matrix:ds", "section:flavors:ds",
                     "section:agreement:CS1", "section:agreement:DS"):
            assert name in hits, name
        for c in remaining:
            assert f"anchors:{c.id}" in hits
        assert "typing" in computed and "matrix" in computed
        assert f"anchors:{victim.id}" not in run.records
        assert run.value("report") == build_report_direct(remaining, tree)

    def test_tag_preserving_update_early_cutoff(self, dataset, tmp_path):
        """The headline incremental win: an edit that leaves every tag set
        unchanged recomputes only cheap nodes; every factorization replays."""
        tree, courses, _ = dataset
        courses = list(courses)
        cache = ResultCache(cache_dir=tmp_path)
        build_report_pipeline(courses, tree).run(cache=cache)

        updated = [_tag_preserving_update(courses[0]), *courses[1:]]
        run = build_report_pipeline(updated, tree).run(cache=cache)
        computed = set(run.computed_nodes())
        # The course digest changed, so matrix/dataset/anchors re-run...
        assert "matrix" in computed
        assert f"anchors:{updated[0].id}" in computed
        # ...but the matrix *value* is unchanged, so every NMF node (and
        # everything keyed on values) replays from cache.
        hits = set(run.hit_nodes())
        assert "typing" in hits and "section:types" in hits
        for slug, _, _ in FLAVOR_FAMILIES:
            if f"section:flavors:{slug}" in run.records:
                assert f"section:flavors:{slug}" in hits, slug
        assert run.value("report") == build_report_direct(updated, tree)

    def test_family_matrix_equals_subset(self, dataset):
        """The family-node keying rests on this: building a matrix from the
        family's courses bit-equals slicing the global matrix."""
        tree, courses, _ = dataset
        courses = list(courses)
        full = build_course_matrix(courses, tree=tree)
        for _, _, labels in FLAVOR_FAMILIES:
            family = [c for c in courses if labels & c.labels]
            direct = build_course_matrix(family, tree=tree)
            sliced = full.subset([c.id for c in family])
            assert direct.course_ids == sliced.course_ids
            assert direct.tag_ids == sliced.tag_ids
            assert np.array_equal(direct.matrix, sliced.matrix)

    def test_course_digest_sensitivity(self, dataset):
        _, courses, _ = dataset
        c = list(courses)[0]
        assert course_digest(c) == course_digest(c)
        assert course_digest(c) != course_digest(_tag_preserving_update(c))


class TestChaosPipeline:
    def test_faulty_run_bit_identical_and_cache_clean(
        self, dataset, tmp_path, monkeypatch
    ):
        """Node retries under an injected fault plan must neither change
        the report nor poison the memoized node values."""
        tree, courses, _ = dataset
        courses = list(courses)[:8]
        cache = ResultCache(cache_dir=tmp_path)
        expected = build_report_direct(courses, tree)

        monkeypatch.setenv(
            "REPRO_FAULTS", "seed=3,task_error=0.4,only_first_attempt=1"
        )
        chaotic = build_report_pipeline(courses, tree).run(
            workers=2, cache=cache
        )
        assert metrics.get("executor.retry") > 0, "plan never fired"
        assert chaotic.value("report") == expected

        # Disarm and replay purely from the memoized values.
        monkeypatch.delenv("REPRO_FAULTS")
        warm = build_report_pipeline(courses, tree).run(cache=cache)
        assert warm.n_computed == 0
        assert warm.value("report") == expected
