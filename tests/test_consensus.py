"""Tests for consensus NMF and cophenetic rank selection."""

import numpy as np
import pytest

from repro.factorization.consensus import (
    consensus_matrix,
    cophenetic_correlation,
    cophenetic_k_profile,
)


@pytest.fixture()
def block_matrix(rng):
    a = np.zeros((12, 18))
    a[:4, :6] = 1
    a[4:8, 6:12] = 1
    a[8:, 12:] = 1
    return a + 0.05 * rng.random(a.shape)


class TestConsensusMatrix:
    def test_shape_and_range(self, block_matrix):
        c = consensus_matrix(block_matrix, 3, n_runs=5, seed=0)
        assert c.shape == (12, 12)
        assert (c >= 0).all() and (c <= 1).all()

    def test_symmetric_unit_diagonal(self, block_matrix):
        c = consensus_matrix(block_matrix, 3, n_runs=5, seed=0)
        assert np.allclose(c, c.T)
        assert np.allclose(np.diag(c), 1.0)

    def test_clean_blocks_give_binary_consensus(self, block_matrix):
        c = consensus_matrix(block_matrix, 3, n_runs=10, seed=0)
        assert np.mean((c < 0.05) | (c > 0.95)) > 0.95
        # Same-block pairs co-cluster always.
        assert c[0, 1] == pytest.approx(1.0)
        assert c[0, 8] == pytest.approx(0.0, abs=0.1)

    def test_deterministic(self, block_matrix):
        a = consensus_matrix(block_matrix, 3, n_runs=4, seed=7)
        b = consensus_matrix(block_matrix, 3, n_runs=4, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_needs_two_runs(self, block_matrix):
        with pytest.raises(ValueError):
            consensus_matrix(block_matrix, 3, n_runs=1)


class TestCopheneticCorrelation:
    def test_perfect_on_binary_consensus(self, block_matrix):
        c = consensus_matrix(block_matrix, 3, n_runs=10, seed=0)
        assert cophenetic_correlation(c) > 0.99

    def test_bounds(self, rng):
        # Random symmetric "consensus": still produces a finite correlation.
        m = rng.random((8, 8))
        c = (m + m.T) / 2
        np.fill_diagonal(c, 1.0)
        rho = cophenetic_correlation(c)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9

    def test_degenerate_identical_distances(self):
        c = np.full((5, 5), 0.5)
        np.fill_diagonal(c, 1.0)
        assert cophenetic_correlation(c) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cophenetic_correlation(np.ones((2, 3)))
        with pytest.raises(ValueError):
            cophenetic_correlation(np.ones((2, 2)))


class TestKProfile:
    def test_profile_keys_and_range(self, block_matrix):
        prof = cophenetic_k_profile(block_matrix, [2, 3], n_runs=5, seed=0)
        assert set(prof) == {2, 3}
        assert all(-1.0 <= v <= 1.0 + 1e-9 for v in prof.values())

    def test_true_rank_scores_high(self, block_matrix):
        prof = cophenetic_k_profile(block_matrix, [3], n_runs=10, seed=0)
        assert prof[3] > 0.98

    def test_canonical_course_matrix_stable(self, matrix):
        prof = cophenetic_k_profile(matrix.matrix, [4], n_runs=6, seed=0)
        # The paper's k=4 typing co-clusters stably across restarts.
        assert prof[4] > 0.9
