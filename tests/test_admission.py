"""Unit suite for the overload primitives (PR 10).

:mod:`repro.service.admission` is the part of the service stack that
must be *provably* right in isolation — the HTTP tests exercise it
end-to-end, but queue accounting, deadline arithmetic, and breaker
state transitions each have edge cases a load test hits only by luck.
Covered here:

* ``Deadline`` — budget arithmetic, the unbounded sentinel, expiry;
* ``AdmissionGate`` — immediate admit, bounded queue with FIFO wakeup,
  watermark shed, deadline-bounded waits, drain semantics;
* ``CircuitBreaker`` — trip threshold, fail-fast while open, the
  half-open single-probe protocol, and the non-claiming ``check()``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.runtime as runtime
from repro.runtime.executor import failure_report
from repro.runtime.metrics import metrics
from repro.service import (
    NO_DEADLINE,
    AdmissionGate,
    AdmissionShed,
    BreakerOpen,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
)


@pytest.fixture(autouse=True)
def _isolated_runtime():
    runtime.reset()
    yield
    runtime.reset()


# -- Deadline ----------------------------------------------------------------


class TestDeadline:
    def test_unbounded(self):
        assert NO_DEADLINE.remaining() is None
        assert not NO_DEADLINE.expired()
        NO_DEADLINE.require()  # never raises
        assert Deadline.after(None).remaining() is None

    def test_budget_counts_down(self):
        d = Deadline.after(30.0)
        r = d.remaining()
        assert 0 < r <= 30.0
        assert not d.expired()

    def test_expiry(self):
        d = Deadline.after(0.005)
        time.sleep(0.01)
        assert d.expired()
        assert d.remaining() <= 0
        with pytest.raises(DeadlineExceeded):
            d.require()

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_budgets_rejected(self, bad):
        with pytest.raises(ValueError):
            Deadline.after(bad)


# -- AdmissionGate -----------------------------------------------------------


class TestAdmissionGate:
    def test_admit_below_limit_is_immediate(self):
        gate = AdmissionGate("cheap", max_inflight=2, max_queue=0)
        gate.admit()
        gate.admit()
        snap = gate.snapshot()
        assert snap["inflight"] == 2 and snap["waiting"] == 0
        gate.release()
        gate.release()
        assert gate.snapshot()["inflight"] == 0

    def test_queue_full_sheds_with_metric(self):
        gate = AdmissionGate("heavy", max_inflight=1, max_queue=0)
        gate.admit()
        with pytest.raises(AdmissionShed) as exc:
            gate.admit()
        assert exc.value.reason == "queue_full"
        assert exc.value.retry_after_s > 0
        assert metrics.get("service.shed.heavy") == 1
        gate.release()

    def test_queued_request_admitted_on_release(self):
        gate = AdmissionGate("heavy", max_inflight=1, max_queue=2)
        gate.admit()
        admitted = threading.Event()

        def waiter():
            gate.admit(Deadline.after(10.0))
            admitted.set()

        t = threading.Thread(target=waiter)
        t.start()
        # the waiter must actually be queued, not admitted
        deadline = time.perf_counter() + 5.0
        while gate.snapshot()["waiting"] == 0:
            assert time.perf_counter() < deadline, "waiter never queued"
            time.sleep(0.005)
        assert not admitted.is_set()
        gate.release()
        t.join(timeout=5.0)
        assert admitted.is_set()
        gate.release()

    def test_expired_in_queue_never_admitted(self):
        gate = AdmissionGate("heavy", max_inflight=1, max_queue=2)
        gate.admit()
        with pytest.raises(DeadlineExceeded):
            gate.admit(Deadline.after(0.02))
        assert metrics.get("service.deadline.queue_expired") == 1
        # the slot accounting is intact: release + re-admit works
        gate.release()
        gate.admit()
        gate.release()

    def test_drain_wakes_queued_waiters_with_shed(self):
        gate = AdmissionGate("heavy", max_inflight=1, max_queue=4)
        gate.admit()
        outcomes = []

        def waiter():
            try:
                gate.admit(Deadline.after(30.0))
                outcomes.append("admitted")
            except AdmissionShed as exc:
                outcomes.append(exc.reason)

        threads = [threading.Thread(target=waiter) for _ in range(3)]
        for t in threads:
            t.start()
        deadline = time.perf_counter() + 5.0
        while gate.snapshot()["waiting"] < 3:
            assert time.perf_counter() < deadline, "waiters never queued"
            time.sleep(0.005)
        gate.drain()
        for t in threads:
            t.join(timeout=5.0)  # fast: nobody rides out their deadline
        assert outcomes == ["draining"] * 3
        # and all future admissions are refused too
        with pytest.raises(AdmissionShed) as exc:
            gate.admit()
        assert exc.value.reason == "draining"

    def test_no_overadmission_under_contention(self):
        gate = AdmissionGate("cheap", max_inflight=3, max_queue=64)
        peak = []
        lock = threading.Lock()
        live = [0]

        def one(_):
            gate.admit(Deadline.after(30.0))
            try:
                with lock:
                    live[0] += 1
                    peak.append(live[0])
                time.sleep(0.002)
            finally:
                with lock:
                    live[0] -= 1
                gate.release()

        with ThreadPoolExecutor(max_workers=16) as pool:
            list(pool.map(one, range(40)))
        assert max(peak) <= 3
        snap = gate.snapshot()
        assert snap["inflight"] == 0 and snap["waiting"] == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate("x", max_inflight=0, max_queue=1)
        with pytest.raises(ValueError):
            AdmissionGate("x", max_inflight=1, max_queue=-1)


# -- CircuitBreaker ----------------------------------------------------------


class TestCircuitBreaker:
    def test_threshold_consecutive_failures_trip(self):
        b = CircuitBreaker("nmf", threshold=3, recovery_s=60.0)
        for _ in range(2):
            b.allow()
            b.record_failure(RuntimeError("boom"))
        assert b.state == b.CLOSED  # 2 < threshold
        b.allow()
        b.record_failure(RuntimeError("boom"))
        assert b.state == b.OPEN
        assert b.is_open()
        with pytest.raises(BreakerOpen) as exc:
            b.allow()
        assert exc.value.retry_after_s > 0
        assert metrics.get("service.breaker.open") == 1
        assert metrics.get("service.breaker.fast_fail") == 1

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker("nmf", threshold=2, recovery_s=60.0)
        b.record_failure("x")
        b.record_success()
        b.record_failure("x")
        assert b.state == b.CLOSED  # never 2 *consecutive*

    def test_half_open_admits_exactly_one_probe(self):
        b = CircuitBreaker("nmf", threshold=1, recovery_s=0.02)
        b.record_failure(RuntimeError("boom"))
        time.sleep(0.03)
        assert b.state == b.HALF_OPEN
        b.allow()  # the probe
        with pytest.raises(BreakerOpen):
            b.allow()  # second caller while the probe is out
        b.record_success()
        assert b.state == b.CLOSED
        b.allow()  # closed again: flows freely

    def test_failed_probe_reopens(self):
        b = CircuitBreaker("nmf", threshold=1, recovery_s=0.02)
        b.record_failure(RuntimeError("boom"))
        time.sleep(0.03)
        b.allow()
        b.record_failure(RuntimeError("still down"))
        assert b.state == b.OPEN
        with pytest.raises(BreakerOpen):
            b.allow()

    def test_check_never_claims_the_probe(self):
        b = CircuitBreaker("nmf", threshold=1, recovery_s=0.02)
        b.record_failure(RuntimeError("boom"))
        with pytest.raises(BreakerOpen):
            b.check()
        time.sleep(0.03)
        # recovery elapsed: check passes but claims nothing, so the
        # dispatcher-side allow() still gets the probe afterwards
        b.check()
        b.check()
        b.allow()
        with pytest.raises(BreakerOpen):
            b.check()  # probe in flight now — checkers fail fast

    def test_trip_and_failure_report(self):
        b = CircuitBreaker("nmf", threshold=5, recovery_s=60.0)
        b.trip("chaos op")
        assert b.is_open()
        snap = b.snapshot()
        assert snap["state"] == b.OPEN
        assert snap["trips"] == 1
        assert snap["last_error"] == "chaos op"
        assert failure_report().counts.get("breaker_open", 0) >= 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", recovery_s=0.0)
