"""Tests for repro.runtime.sanitize — the dynamic lock sanitizer.

The static RPR5xx rules prove ordering discipline about code the
analyzer can see; the sanitizer checks the same properties on live
acquisitions.  These tests drive the wrappers directly: inversions are
detectable from one thread (the order graph is global, not per-thread),
long holds from a lowered threshold, and the whole thing must stay
invisible when disabled.
"""

import threading
import time

import pytest

from repro import runtime
from repro.runtime import sanitize
from repro.runtime.executor import failure_report
from repro.runtime.metrics import metrics
from repro.runtime.sanitize import (
    LockSanitizer,
    _SanitizedLock,
    enabled,
    make_condition,
    make_lock,
    make_rlock,
    set_sanitize,
)


@pytest.fixture
def sanitized():
    """Enable instrumentation, hand out the global sanitizer, clean up."""
    set_sanitize("locks")
    sanitize.reset()
    metrics.reset()
    failure_report().clear()
    yield sanitize.sanitizer()
    sanitize.reset()
    set_sanitize(None)
    metrics.reset()
    failure_report().clear()


class TestGating:
    def test_disabled_returns_plain_locks(self):
        set_sanitize(False)
        try:
            assert not enabled()
            assert not isinstance(make_lock("x"), _SanitizedLock)
            assert not isinstance(make_rlock("x"), _SanitizedLock)
        finally:
            set_sanitize(None)

    def test_enabled_wraps(self, sanitized):
        lock = make_lock("t.wrapped")
        assert isinstance(lock, _SanitizedLock)
        assert not lock.reentrant
        assert make_rlock("t.r").reentrant

    def test_string_modes(self):
        try:
            set_sanitize("locks")
            assert enabled()
            set_sanitize("all")
            assert enabled()
            set_sanitize("other,locks")
            assert enabled()
            set_sanitize("")
            assert not enabled()
        finally:
            set_sanitize(None)

    def test_none_defers_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "locks")
        set_sanitize(None)
        assert enabled()
        monkeypatch.delenv("REPRO_SANITIZE")
        set_sanitize(None)
        assert not enabled()

    def test_configure_threads_through(self, sanitized):
        runtime.configure(sanitize=False)
        try:
            assert not enabled()
        finally:
            runtime.configure(sanitize="locks")
        assert enabled()


class TestLockProtocol:
    def test_context_manager_and_locked(self, sanitized):
        lock = make_lock("t.cm")
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_rlock_reentrancy(self, sanitized):
        lock = make_rlock("t.re")
        with lock:
            with lock:
                pass
        # The nested acquire is a recursion bump, not a new acquisition.
        assert sanitized.counters()["sanitizer.acquisitions"] == 1
        assert sanitized.n_violations == 0

    def test_condition_wait_releases_through_wrapper(self, sanitized):
        cond = make_condition("t.cond")
        with cond:
            cond.wait(timeout=0.01)
        # acquire, wait's release/reacquire, final release — and the
        # held stack ends empty with nothing flagged.
        assert sanitized.counters()["sanitizer.acquisitions"] >= 2
        assert sanitized.n_violations == 0

    def test_try_acquire_failure_not_recorded(self, sanitized):
        lock = make_lock("t.try")
        lock.acquire()
        grabbed = []
        t = threading.Thread(
            target=lambda: grabbed.append(lock.acquire(blocking=False))
        )
        t.start()
        t.join()
        assert grabbed == [False]
        lock.release()
        assert sanitized.counters()["sanitizer.acquisitions"] == 1


class TestInversions:
    def test_opposite_nesting_orders_flagged(self, sanitized):
        a, b = make_lock("t.a"), make_lock("t.b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert sanitized.n_violations == 1
        v = sanitized.violations()[0]
        assert v.kind == "order_inversion"
        assert {v.lock, v.other} == {"t.a", "t.b"}
        assert "deadlock" in v.detail

    def test_cross_thread_inversion(self, sanitized):
        a, b = make_lock("t.a"), make_lock("t.b")

        def forward():
            with a:
                with b:
                    pass

        t = threading.Thread(target=forward)
        t.start()
        t.join()
        with b:
            with a:
                pass
        assert sanitized.n_violations == 1

    def test_consistent_order_is_clean(self, sanitized):
        a, b = make_lock("t.a"), make_lock("t.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert sanitized.n_violations == 0
        assert sanitized.counters()["sanitizer.acquisitions"] == 6

    def test_same_name_pairs_excluded(self, sanitized):
        """Names are roles shared by every instance of a class; two
        lanes of one broker nesting each other's locks is striping, not
        an ordering bug the name-level graph can judge."""
        a, b = make_lock("t.lane"), make_lock("t.lane")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert sanitized.n_violations == 0

    def test_repeat_inversion_reported_once_counted_each(self, sanitized):
        a, b = make_lock("t.a"), make_lock("t.b")
        with a:
            with b:
                pass
        for _ in range(3):
            with b:
                with a:
                    pass
        assert len(sanitized.violations()) == 1
        assert sanitized.counters()["sanitizer.violations.order_inversion"] == 3
        assert sanitized.counters()["sanitizer.violations"] == 3

    def test_violation_feeds_metrics_and_failure_report(self, sanitized):
        a, b = make_lock("t.a"), make_lock("t.b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert metrics.get("sanitizer.order_inversion") == 1
        assert failure_report().counts.get("sanitizer.order_inversion") == 1
        assert "sanitizer:" in runtime.summary()


class TestLongHold:
    def test_hold_past_threshold_flagged(self, sanitized):
        san = LockSanitizer(hold_threshold_s=0.01)
        lock = _SanitizedLock(threading.Lock(), "t.slow", False, san)
        with lock:
            time.sleep(0.03)
        assert san.n_violations == 1
        v = san.violations()[0]
        assert v.kind == "long_hold"
        assert v.lock == "t.slow"

    def test_fast_hold_is_clean(self, sanitized):
        san = LockSanitizer(hold_threshold_s=0.5)
        lock = _SanitizedLock(threading.Lock(), "t.fast", False, san)
        with lock:
            pass
        assert san.n_violations == 0

    def test_threshold_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE_HOLD_S", "2.5")
        assert LockSanitizer().hold_threshold_s == 2.5


class TestReporting:
    def test_report_doc_shape(self, sanitized):
        a, b = make_lock("t.a"), make_lock("t.b")
        with a:
            with b:
                pass
        doc = sanitize.report_doc()
        assert doc["enabled"] is True
        assert doc["n_edges"] == 1
        assert doc["n_violations"] == 0
        assert doc["counters"]["sanitizer.acquisitions"] == 2
        assert doc["violations"] == []

    def test_reset_clears_everything(self, sanitized):
        a, b = make_lock("t.a"), make_lock("t.b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert sanitized.n_violations == 1
        sanitize.reset()
        assert sanitized.n_violations == 0
        assert sanitized.counters() == {}
        assert sanitized.violations() == []

    def test_runtime_reset_resets_sanitizer(self, sanitized):
        a, b = make_lock("t.a"), make_lock("t.b")
        with a:
            with b:
                pass
        runtime.reset()
        assert sanitized.counters() == {}
