"""Tests for the later surface additions: flavor naming, new DAG
generators, schedule stats/export, repository stats, and the analytic
tag-probability calibration check."""

import numpy as np
import pytest

from repro.analysis import analyze_flavors
from repro.corpus.generator import (
    CorpusConfig,
    expected_tag_probability,
    sample_course_tags,
)
from repro.materials import MaterialRepository
from repro.materials.course import CourseLabel
from repro.taskgraph import TaskGraph, list_schedule
from repro.taskgraph.dag import pipeline_dag, reduction_tree_dag


class TestFlavorNaming:
    def test_canonical_cs1_types_named_sensibly(self, matrix, cs1_courses, cs2013):
        sub = matrix.subset([c.id for c in cs1_courses])
        fa = analyze_flavors(sub, cs2013, 3, seed=1)
        descriptions = [p.describe() for p in fa.profiles]
        text = " | ".join(descriptions)
        assert "object-oriented" in text
        assert "imperative" in text
        assert "algorithmic" in text or "combinatorial" in text

    def test_empty_profile(self):
        from repro.analysis.flavors import TypeProfile
        p = TypeProfile(index=0, area_mass={}, top_tags=(), member_courses=())
        assert "(empty)" in p.describe()

    def test_describe_includes_percentages(self, matrix, cs1_courses, cs2013):
        sub = matrix.subset([c.id for c in cs1_courses])
        fa = analyze_flavors(sub, cs2013, 3, seed=1)
        for p in fa.profiles:
            assert "%" in p.describe()


class TestNewDagGenerators:
    def test_reduction_tree_counts(self):
        g = reduction_tree_dag(8)
        assert g.n_tasks == 8 + 7  # leaves + internal combines
        assert len(g.sinks()) == 1
        assert g.span() == pytest.approx(1 + 3)  # leaf + log2(8) combines

    def test_reduction_tree_odd_leaves(self):
        g = reduction_tree_dag(5)
        assert len(g.sinks()) == 1
        assert g.n_tasks == 5 + 4

    def test_reduction_tree_single_leaf(self):
        g = reduction_tree_dag(1)
        assert g.n_tasks == 1

    def test_reduction_speedup_logarithmic(self):
        g = reduction_tree_dag(64)
        s = list_schedule(g, 64)
        s.validate()
        # Work ~127, span ~7: speedup well above 10 with enough processors.
        assert s.speedup() > 10

    def test_pipeline_shape(self):
        g = pipeline_dag(3, 5)
        assert g.n_tasks == 15
        # Span = path through first item's stages then remaining items at
        # the last stage: n_stages + n_items - 1.
        assert g.span() == pytest.approx(3 + 5 - 1)

    def test_pipeline_parallelism_bounded_by_stages(self):
        g = pipeline_dag(3, 30)
        s = list_schedule(g, 16)
        s.validate()
        assert s.speedup() <= 3 + 1e-9

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            reduction_tree_dag(0)
        with pytest.raises(ValueError):
            pipeline_dag(0, 3)


class TestScheduleStats:
    @pytest.fixture()
    def schedule(self):
        g = TaskGraph.from_edges(
            {"a": 2.0, "b": 2.0, "c": 2.0}, [("a", "c")]
        )
        return list_schedule(g, 2)

    def test_utilization_range(self, schedule):
        u = schedule.utilization()
        assert len(u) == 2
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in u)

    def test_idle_plus_busy_consistent(self, schedule):
        idle = schedule.idle_time()
        busy = schedule.graph.work()
        total = schedule.n_processors * schedule.makespan
        assert idle + busy == pytest.approx(total)

    def test_to_dict_round(self, schedule):
        import json
        d = schedule.to_dict()
        assert d["format"] == "repro-schedule"
        assert len(d["placements"]) == 3
        json.dumps(d)  # JSON-compatible
        for p in d["placements"]:
            assert p["finish"] >= p["start"]

    def test_empty_schedule_utilization(self):
        s = list_schedule(TaskGraph({}), 3)
        assert s.utilization() == [0.0, 0.0, 0.0]


class TestRepositoryStats:
    def test_counts(self, courses):
        repo = MaterialRepository()
        for c in list(courses)[:3]:
            repo.add_course(c)
        stats = repo.stats()
        assert sum(stats["by_type"].values()) == repo.n_materials
        assert "lecture" in stats["by_type"]
        assert "exam" in stats["by_type"]

    def test_empty_repo(self):
        stats = MaterialRepository().stats()
        assert stats == {"by_type": {}, "by_level": {}, "by_language": {}}


class TestAnalyticTagProbability:
    def test_matches_monte_carlo(self, cs2013):
        """Analytic inclusion probability ≈ empirical frequency.

        The jitter is lognormal with median 1 (mean e^{σ²/2} > 1), so the
        analytic value underestimates slightly; accept a generous band.
        """
        mixture = {"pdc": 1.0}
        # A high-probability PD tag.
        tag = next(
            t.id for t in cs2013.tags() if t.id.startswith("CS2013/PD/PF/t-")
        )
        p_analytic = expected_tag_probability(cs2013, tag, mixture)
        hits = sum(
            tag in sample_course_tags(cs2013, mixture, seed=s)
            for s in range(300)
        )
        p_mc = hits / 300
        assert abs(p_mc - p_analytic) < 0.2
        assert p_analytic > 0.5

    def test_zero_profile_tag_is_noise_only(self, cs2013):
        config = CorpusConfig()
        tag = next(t.id for t in cs2013.tags() if t.id.startswith("CS2013/NC/"))
        p = expected_tag_probability(cs2013, tag, {"cs1-imperative": 1.0},
                                     config=config)
        assert p == pytest.approx(config.noise_rate)

    def test_non_tag_rejected(self, cs2013):
        with pytest.raises(ValueError):
            expected_tag_probability(cs2013, "CS2013/PD", {"pdc": 1.0})
