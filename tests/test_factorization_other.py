"""Tests for PCA, MDS, k-means, spectral co-clustering, and leaf ordering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.factorization.bicluster import SpectralCoclustering
from repro.factorization.kmeans import KMeans, kmeans_plus_plus
from repro.factorization.mds import classical_mds, smacof, stress
from repro.factorization.ordering import hierarchical_order
from repro.factorization.pca import PCA


def pairwise(x):
    return np.sqrt(np.maximum(
        np.sum(x**2, 1)[:, None] + np.sum(x**2, 1)[None, :] - 2 * x @ x.T, 0,
    ))


class TestPCA:
    def test_variance_ordering(self, rng):
        x = rng.normal(size=(100, 5)) * np.array([5, 3, 1, 0.5, 0.1])
        p = PCA(5).fit(x)
        ev = p.explained_variance_
        assert all(a >= b for a, b in zip(ev, ev[1:]))
        assert p.explained_variance_ratio_.sum() == pytest.approx(1.0, abs=1e-9)

    def test_transform_centers(self, rng):
        x = rng.normal(loc=10.0, size=(50, 4))
        p = PCA(2).fit(x)
        z = p.transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)

    def test_round_trip_full_rank(self, rng):
        x = rng.normal(size=(20, 4))
        p = PCA(4).fit(x)
        np.testing.assert_allclose(p.inverse_transform(p.transform(x)), x, atol=1e-8)

    def test_reconstruction_error_decreases_with_rank(self, rng):
        x = rng.normal(size=(30, 6))
        errs = [PCA(k).fit(x).reconstruction_error(x) for k in (1, 3, 6)]
        assert errs[0] >= errs[1] >= errs[2]
        assert errs[2] == pytest.approx(0.0, abs=1e-8)

    def test_components_orthonormal(self, rng):
        x = rng.normal(size=(40, 5))
        p = PCA(3).fit(x)
        gram = p.components_ @ p.components_.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-8)

    def test_errors(self, rng):
        with pytest.raises(ValueError):
            PCA(0)
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.ones((2, 2)))
        p = PCA(2).fit(rng.normal(size=(5, 3)))
        with pytest.raises(ValueError):
            p.transform(np.ones((2, 7)))


class TestClassicalMDS:
    def test_exact_on_euclidean(self, rng):
        x = rng.normal(size=(12, 2))
        d = pairwise(x)
        res = classical_mds(d, 2)
        np.testing.assert_allclose(pairwise(res.embedding), d, atol=1e-5)
        assert res.stress == pytest.approx(0.0, abs=1e-6)

    def test_higher_dim_input_approximates(self, rng):
        x = rng.normal(size=(15, 6))
        d = pairwise(x)
        res2 = classical_mds(d, 2)
        res5 = classical_mds(d, 5)
        assert res5.stress <= res2.stress + 1e-9

    def test_input_validation(self):
        with pytest.raises(ValueError):
            classical_mds(np.ones((3, 4)))          # not square
        bad = np.zeros((3, 3)); bad[0, 1] = 1.0      # asymmetric
        with pytest.raises(ValueError):
            classical_mds(bad)
        neg = -pairwise(np.random.default_rng(0).normal(size=(4, 2)))
        with pytest.raises(ValueError):
            classical_mds(neg)
        diag = np.ones((3, 3))
        with pytest.raises(ValueError):
            classical_mds(diag)

    def test_n_components_bounds(self, rng):
        d = pairwise(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            classical_mds(d, 0)
        with pytest.raises(ValueError):
            classical_mds(d, 6)


class TestSmacof:
    def test_recovers_euclidean(self, rng):
        x = rng.normal(size=(10, 2)) * 3
        d = pairwise(x)
        res = smacof(d, 2, seed=0)
        assert res.stress < 1e-3

    def test_stress_nonincreasing_vs_random_start(self, rng):
        x = rng.normal(size=(10, 3))
        d = pairwise(x)
        x0 = rng.normal(size=(10, 2))
        res = smacof(d, 2, init=x0, max_iter=100)
        assert res.stress <= stress(d, x0) + 1e-9

    def test_weights_shape_checked(self, rng):
        d = pairwise(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            smacof(d, 2, weights=np.ones((3, 3)))

    def test_init_shape_checked(self, rng):
        d = pairwise(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            smacof(d, 2, init=np.ones((4, 2)))

    @settings(max_examples=15, deadline=None)
    @given(hnp.arrays(np.float64, st.tuples(st.integers(3, 7), st.integers(2, 3)),
                      elements=st.floats(-5, 5)))
    def test_stress_nonnegative(self, x):
        d = pairwise(x)
        res = smacof(d, 2, seed=0, max_iter=20, n_init=1)
        assert res.stress >= -1e-9


class TestKMeans:
    def test_separated_clusters_recovered(self, rng):
        pts = np.vstack([rng.normal(c, 0.3, size=(20, 2)) for c in (0, 10, 20)])
        km = KMeans(3, seed=0).fit(pts)
        labels = km.labels_
        for grp in (labels[:20], labels[20:40], labels[40:]):
            assert len(set(grp.tolist())) == 1
        assert len(set(labels.tolist())) == 3

    def test_inertia_decreases_with_k(self, rng):
        pts = rng.normal(size=(60, 2))
        inertias = [KMeans(k, seed=0).fit(pts).inertia_ for k in (1, 3, 6)]
        assert inertias[0] >= inertias[1] >= inertias[2]

    def test_predict_assigns_nearest(self, rng):
        pts = np.vstack([rng.normal(0, 0.1, (10, 2)), rng.normal(5, 0.1, (10, 2))])
        km = KMeans(2, seed=0).fit(pts)
        lab_near_0 = km.predict(np.array([[0.0, 0.0]]))[0]
        assert lab_near_0 == km.labels_[0]

    def test_kmeanspp_centers_are_data_points(self, rng):
        pts = rng.normal(size=(30, 3))
        centers = kmeans_plus_plus(pts, 4, rng)
        for c in centers:
            assert any(np.allclose(c, p) for p in pts)

    def test_requires_enough_points(self, rng):
        with pytest.raises(ValueError):
            KMeans(5).fit(rng.normal(size=(3, 2)))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.ones((2, 2)))

    def test_duplicate_points_ok(self):
        pts = np.ones((10, 2))
        km = KMeans(2, seed=0, n_init=2).fit(pts)
        assert km.inertia_ == pytest.approx(0.0)


class TestSpectralCoclustering:
    def test_block_diagonal_recovered(self, rng):
        a = np.zeros((10, 14))
        a[:5, :7] = 1.0
        a[5:, 7:] = 1.0
        a += 0.01 * rng.random(a.shape)
        cc = SpectralCoclustering(2, seed=0).fit(a)
        assert len(set(cc.row_labels_[:5].tolist())) == 1
        assert len(set(cc.row_labels_[5:].tolist())) == 1
        assert cc.row_labels_[0] != cc.row_labels_[5]
        # Column clusters pair with the matching row clusters.
        assert cc.column_labels_[0] == cc.row_labels_[0]
        assert cc.column_labels_[7] == cc.row_labels_[5]

    def test_block_order_is_permutation(self, rng):
        a = rng.random((8, 9))
        cc = SpectralCoclustering(2, seed=0).fit(a)
        rows, cols = cc.block_order()
        assert sorted(rows.tolist()) == list(range(8))
        assert sorted(cols.tolist()) == list(range(9))

    def test_too_small_matrix_rejected(self):
        with pytest.raises(ValueError):
            SpectralCoclustering(4).fit(np.ones((3, 10)))

    def test_requires_two_clusters(self):
        with pytest.raises(ValueError):
            SpectralCoclustering(1)

    def test_unfitted_block_order(self):
        with pytest.raises(RuntimeError):
            SpectralCoclustering(2).block_order()


class TestHierarchicalOrder:
    def test_permutation(self, rng):
        x = rng.normal(size=(9, 3))
        order = hierarchical_order(pairwise(x))
        assert sorted(order) == list(range(9))

    def test_groups_adjacent(self, rng):
        # Two tight clusters: members should end up contiguous.
        pts = np.vstack([rng.normal(0, 0.1, (4, 2)), rng.normal(10, 0.1, (4, 2))])
        order = hierarchical_order(pairwise(pts))
        first_half = set(order[:4])
        assert first_half in ({0, 1, 2, 3}, {4, 5, 6, 7})

    def test_empty_and_single(self):
        assert hierarchical_order(np.zeros((0, 0))) == []
        assert hierarchical_order(np.zeros((1, 1))) == [0]

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            hierarchical_order(np.zeros((2, 3)))
